//! The home-node full-map directory FSM.
//!
//! Per-block state is either *stable* — `Uncached`, `Shared(vector)`,
//! `Modified(owner)` — or *busy* while a transaction is in flight:
//!
//! * `BusyCtoC`: a read or write intervention has been forwarded to the
//!   owner and the home is waiting for the owner's `CopyBack` (or, in the
//!   eviction race, its `WriteBack`).
//! * `BusyInval`: invalidations are out and the home is counting acks
//!   before granting ownership to a writer.
//!
//! Requests that hit a busy block are queued (bounded) or NAK'd. Marked
//! copybacks/writebacks from switch directories carry additional sharer
//! pids that the home folds into the vector at completion time.

use dresar_obs::{DirStateKind, HomeReq, HomeTransition, Probe};
use dresar_types::{
    BlockAddr, Cycle, FastMap, FromJson, JsonError, JsonValue, NodeId, Protocol, SharerSet, ToJson,
    MAX_NODES,
};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

fn kind_of(state: &DirState) -> DirStateKind {
    match state {
        DirState::Uncached => DirStateKind::Uncached,
        DirState::Shared(_) => DirStateKind::Shared,
        DirState::Modified(_) => DirStateKind::Modified,
        DirState::Owned { .. } => DirStateKind::Owned,
    }
}

/// Stable directory state of a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the block; memory is the only copy.
    Uncached,
    /// Read-only copies at the recorded sharers; memory is up to date.
    /// (The vector may include stale sharers that evicted silently.)
    Shared(SharerSet),
    /// One cache holds the block dirty — or, under MESI/MOESI, holds it
    /// EXCLUSIVE: the home cannot tell E from M (the silent-upgrade rule)
    /// and books both as ownership.
    Modified(NodeId),
    /// MOESI dirty sharing: `owner` holds the block OWNED and supplies
    /// reads; `sharers` hold read-only copies (the owner is *not* in the
    /// sharer vector). Never constructed under the other protocols.
    Owned {
        /// The cache that supplies the block.
        owner: NodeId,
        /// Read-only copy holders beside the owner.
        sharers: SharerSet,
    },
}

/// A queued request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read (load miss).
    Read,
    /// Write / ownership request.
    Write,
}

/// A request parked in a block's pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedReq {
    /// The block concerned.
    pub block: BlockAddr,
    /// Requesting processor.
    pub requester: NodeId,
    /// Read or write.
    pub kind: ReqKind,
}

/// What the home directory wants the surrounding simulator to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirAction {
    /// Send the requester a clean `ReadReply` from memory.
    ReadReplyClean {
        /// Destination processor.
        to: NodeId,
    },
    /// Send the requester a clean `ReadReply` granting the EXCLUSIVE state
    /// (MESI/MOESI unshared-fill rule). The home books the requester as
    /// owner under `seq`, because the E copy may upgrade to M silently.
    ReadReplyExcl {
        /// Destination processor.
        to: NodeId,
        /// Sequence number of the granted ownership instance.
        seq: u64,
    },
    /// Send the requester a `WriteReply` granting ownership (with data).
    WriteReplyGrant {
        /// Destination processor.
        to: NodeId,
        /// Sequence number of the granted ownership instance.
        seq: u64,
    },
    /// Forward a `CtoCRequest` intervention to the owner.
    ForwardCtoC {
        /// Current owner to interrogate.
        owner: NodeId,
        /// Processor the data should be sent to.
        requester: NodeId,
        /// `true` when the intervention transfers ownership (write).
        write_intent: bool,
        /// Sequence of the owner's ownership instance being intervened.
        owner_seq: u64,
    },
    /// Send `Invalidate`s to `targets`; ownership will be granted to
    /// `writer` once all acks return.
    Invalidate {
        /// Sharers to invalidate.
        targets: SharerSet,
        /// Writer awaiting the grant.
        writer: NodeId,
    },
    /// NAK the requester (busy queue full, or a writeback race); the
    /// requester retries after backoff.
    Nak {
        /// Destination processor.
        to: NodeId,
    },
    /// The request was parked in the block's pending queue.
    Queued,
}

/// Busy sub-state of an in-flight transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Busy {
    /// Intervention forwarded to `owner` on behalf of `requester`.
    CtoC { owner: NodeId, requester: NodeId, write_intent: bool },
    /// Counting invalidation acks before granting to `writer`.
    Inval { writer: NodeId, acks_left: u32 },
}

#[derive(Debug, Clone)]
struct BlockEntry {
    state: DirState,
    busy: Option<Busy>,
    pending: VecDeque<QueuedReq>,
    /// Ownership-instance sequence: bumped on every transition into
    /// `Modified`. Grants and forwarded interventions carry it so owners
    /// can reject interventions for an instance they no longer hold (a
    /// retransmitted intervention can outlive its transaction).
    seq: u64,
}

impl BlockEntry {
    fn stable_uncached() -> Self {
        BlockEntry { state: DirState::Uncached, busy: None, pending: VecDeque::new(), seq: 0 }
    }

    fn is_quiescent(&self) -> bool {
        self.state == DirState::Uncached && self.busy.is_none() && self.pending.is_empty()
    }
}

/// Counters the evaluation section reads out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Reads serviced clean from memory.
    pub reads_clean: u64,
    /// Reads that required a home-forwarded cache-to-cache transfer —
    /// the "home node CtoC transfers" of Figure 8.
    pub reads_ctoc: u64,
    /// Write interventions forwarded to an owner.
    pub writes_ctoc: u64,
    /// Invalidation rounds started.
    pub inval_rounds: u64,
    /// Individual invalidations sent.
    pub invals_sent: u64,
    /// NAKs issued.
    pub naks: u64,
    /// Requests parked in pending queues.
    pub queued: u64,
    /// Marked copyback/writeback messages whose carried sharer pids were
    /// folded into the vector (the switch-directory protocol extension).
    pub marked_completions: u64,
    /// Full-map lookups performed (every request/completion handler consults
    /// the map once). The difference against total reads shows the lookups a
    /// switch directory *saved* the home.
    pub lookups: u64,
    /// High-water mark of concurrently busy (in-transaction) blocks — the
    /// FSM occupancy a sized transaction table would have needed.
    pub peak_busy: u64,
    /// High-water mark of total requests parked in pending queues.
    pub peak_pending: u64,
}

impl DirStats {
    /// Sums another instance's counters into this one (aggregation across
    /// home nodes). Peaks take the max: the merged value answers "how large
    /// would the busiest single controller's table have to be".
    pub fn merge(&mut self, other: &DirStats) {
        self.reads_clean += other.reads_clean;
        self.reads_ctoc += other.reads_ctoc;
        self.writes_ctoc += other.writes_ctoc;
        self.inval_rounds += other.inval_rounds;
        self.invals_sent += other.invals_sent;
        self.naks += other.naks;
        self.queued += other.queued;
        self.marked_completions += other.marked_completions;
        self.lookups += other.lookups;
        self.peak_busy = self.peak_busy.max(other.peak_busy);
        self.peak_pending = self.peak_pending.max(other.peak_pending);
    }
}

impl ToJson for DirStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("reads_clean", self.reads_clean)
            .field("reads_ctoc", self.reads_ctoc)
            .field("writes_ctoc", self.writes_ctoc)
            .field("inval_rounds", self.inval_rounds)
            .field("invals_sent", self.invals_sent)
            .field("naks", self.naks)
            .field("queued", self.queued)
            .field("marked_completions", self.marked_completions)
            .field("lookups", self.lookups)
            .field("peak_busy", self.peak_busy)
            .field("peak_pending", self.peak_pending)
            .build()
    }
}

impl FromJson for DirStats {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(DirStats {
            reads_clean: JsonError::want_u64(v, "reads_clean")?,
            reads_ctoc: JsonError::want_u64(v, "reads_ctoc")?,
            writes_ctoc: JsonError::want_u64(v, "writes_ctoc")?,
            inval_rounds: JsonError::want_u64(v, "inval_rounds")?,
            invals_sent: JsonError::want_u64(v, "invals_sent")?,
            naks: JsonError::want_u64(v, "naks")?,
            queued: JsonError::want_u64(v, "queued")?,
            marked_completions: JsonError::want_u64(v, "marked_completions")?,
            lookups: JsonError::want_u64(v, "lookups")?,
            peak_busy: JsonError::want_u64(v, "peak_busy")?,
            peak_pending: JsonError::want_u64(v, "peak_pending")?,
        })
    }
}

/// A protocol invariant violation the directory recorded instead of
/// corrupting state. Bounds violations (a node id at or past the machine
/// size) and impossible FSM transitions land here in release builds —
/// the old `debug_assert!`s vanished in release and let a bad id silently
/// wrap into the sharer vector. The simulator drains these into
/// `ExecutionReport::sim_errors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirError {
    /// Which handler / invariant tripped (e.g. `"dir_read_bounds"`).
    pub context: &'static str,
    /// Human-readable specifics (ids, machine size).
    pub detail: String,
}

/// The full-map directory for the blocks homed at one node.
#[derive(Debug, Clone)]
pub struct HomeDirectory {
    blocks: FastMap<BlockAddr, BlockEntry>,
    pending_limit: usize,
    /// Machine size: node ids must be `< nodes`. Ids at or past this are
    /// recorded as [`DirError`]s rather than entering the sharer vector.
    nodes: usize,
    /// Which member of the coherence-protocol family this home runs.
    protocol: Protocol,
    stats: DirStats,
    /// Protocol violations recorded in release builds (see [`DirError`]).
    errors: Vec<DirError>,
    /// Blocks currently mid-transaction (feeds `stats.peak_busy`).
    busy_now: u64,
    /// Requests currently parked across all queues (feeds
    /// `stats.peak_pending`).
    pending_now: u64,
}

/// Outcome of a completion-type message (copyback / writeback / inval ack):
/// zero or more immediate actions plus any pending requests to replay.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Completion {
    /// Actions to perform now (replies to waiting requesters, new
    /// invalidation rounds).
    pub actions: Vec<DirAction>,
    /// Pending requests unblocked by this completion; the caller must
    /// re-dispatch them through `handle_read`/`handle_write` in order.
    pub replay: Vec<QueuedReq>,
}

impl Default for HomeDirectory {
    fn default() -> Self {
        Self::new(8)
    }
}

impl HomeDirectory {
    /// Creates a directory with the given per-block pending-queue bound.
    /// Accepts the full `NodeId` range; use [`HomeDirectory::with_nodes`]
    /// to enforce the actual machine size.
    pub fn new(pending_limit: usize) -> Self {
        Self::with_nodes(pending_limit, MAX_NODES)
    }

    /// Creates a directory for a `nodes`-node machine: handler arguments
    /// naming ids `>= nodes` are rejected with a recorded [`DirError`]
    /// instead of corrupting the sharer vector. Runs the paper's MSI
    /// protocol; use [`HomeDirectory::with_protocol`] for the others.
    pub fn with_nodes(pending_limit: usize, nodes: usize) -> Self {
        Self::with_protocol(pending_limit, nodes, Protocol::Msi)
    }

    /// Creates a directory running one member of the protocol family.
    pub fn with_protocol(pending_limit: usize, nodes: usize, protocol: Protocol) -> Self {
        HomeDirectory {
            blocks: FastMap::default(),
            pending_limit,
            nodes,
            protocol,
            stats: DirStats::default(),
            errors: Vec::new(),
            busy_now: 0,
            pending_now: 0,
        }
    }

    /// Drains the protocol violations recorded so far (oldest first).
    pub fn take_errors(&mut self) -> Vec<DirError> {
        std::mem::take(&mut self.errors)
    }

    /// Whether any protocol violation has been recorded and not drained.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    fn record_error(&mut self, context: &'static str, detail: String) {
        self.errors.push(DirError { context, detail });
    }

    /// Release-mode bounds guard: `true` iff `id` names a real node.
    fn node_ok(&mut self, context: &'static str, id: NodeId) -> bool {
        if (id as usize) < self.nodes {
            true
        } else {
            let nodes = self.nodes;
            self.record_error(
                context,
                format!("node id {id} out of range for a {nodes}-node machine"),
            );
            false
        }
    }

    /// Drops out-of-range pids from a carried sharer set, recording one
    /// error naming the offenders. In-range pids still fold in so one bad
    /// pid cannot wipe a marked completion.
    fn sanitize_carried(&mut self, context: &'static str, carried: SharerSet) -> SharerSet {
        let bad: Vec<NodeId> = carried.iter().filter(|&p| (p as usize) >= self.nodes).collect();
        if bad.is_empty() {
            return carried;
        }
        let nodes = self.nodes;
        self.record_error(
            context,
            format!("carried sharer ids {bad:?} out of range for a {nodes}-node machine"),
        );
        let mut clean = carried;
        for p in bad {
            clean.remove(p);
        }
        clean
    }

    /// Current stable state of a block (`Uncached` if never touched).
    /// Busy blocks report their pre-transaction stable state.
    pub fn state(&self, block: BlockAddr) -> DirState {
        self.blocks.get(&block).map(|e| e.state.clone()).unwrap_or(DirState::Uncached)
    }

    /// Whether a transaction is in flight for the block.
    pub fn is_busy(&self, block: BlockAddr) -> bool {
        self.blocks.get(&block).is_some_and(|e| e.busy.is_some())
    }

    /// Iterates every tracked block with its stable state and whether a
    /// transaction is mid-flight. Order is arbitrary (hash map); callers
    /// needing determinism must sort.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockAddr, DirState, bool)> + '_ {
        self.blocks.iter().map(|(&b, e)| (b, e.state.clone(), e.busy.is_some()))
    }

    /// Counters.
    pub fn stats(&self) -> DirStats {
        self.stats
    }

    /// Blocks currently mid-transaction (the live value behind
    /// [`DirStats::peak_busy`]); zero after a quiesced run.
    pub fn busy_now(&self) -> u64 {
        self.busy_now
    }

    /// Requests currently parked across all pending queues (the live value
    /// behind [`DirStats::peak_pending`]); zero after a quiesced run.
    pub fn pending_now(&self) -> u64 {
        self.pending_now
    }

    fn entry(&mut self, block: BlockAddr) -> &mut BlockEntry {
        self.blocks.entry(block).or_insert_with(BlockEntry::stable_uncached)
    }

    /// (busy?, parked requests) of one block — the only entry a handler can
    /// change, so before/after snapshots yield the occupancy delta.
    fn occupancy_of(&self, block: BlockAddr) -> (bool, usize) {
        self.blocks.get(&block).map_or((false, 0), |e| (e.busy.is_some(), e.pending.len()))
    }

    /// Folds one block's occupancy delta into the global counts and peaks.
    fn track_occupancy(&mut self, block: BlockAddr, before: (bool, usize)) {
        let after = self.occupancy_of(block);
        self.busy_now = self.busy_now + after.0 as u64 - before.0 as u64;
        self.pending_now = self.pending_now + after.1 as u64 - before.1 as u64;
        self.stats.peak_busy = self.stats.peak_busy.max(self.busy_now);
        self.stats.peak_pending = self.stats.peak_pending.max(self.pending_now);
    }

    /// Drops quiescent entries to bound memory in long runs.
    pub fn compact(&mut self) {
        self.blocks.retain(|_, e| !e.is_quiescent());
    }

    fn park(&mut self, block: BlockAddr, requester: NodeId, kind: ReqKind) -> DirAction {
        let limit = self.pending_limit;
        let e = self.entry(block);
        if e.pending.len() >= limit {
            self.stats.naks += 1;
            DirAction::Nak { to: requester }
        } else {
            e.pending.push_back(QueuedReq { block, requester, kind });
            self.stats.queued += 1;
            DirAction::Queued
        }
    }

    /// Handles a `ReadRequest` arriving at the home.
    pub fn handle_read(&mut self, block: BlockAddr, requester: NodeId) -> DirAction {
        let before = self.occupancy_of(block);
        self.stats.lookups += 1;
        let action = self.read_impl(block, requester);
        self.track_occupancy(block, before);
        action
    }

    fn read_impl(&mut self, block: BlockAddr, requester: NodeId) -> DirAction {
        if !self.node_ok("dir_read_bounds", requester) {
            self.stats.naks += 1;
            return DirAction::Nak { to: requester };
        }
        if self.entry(block).busy.is_some() {
            return self.park(block, requester, ReqKind::Read);
        }
        let protocol = self.protocol;
        let e = self.entry(block);
        match e.state.clone() {
            DirState::Uncached if protocol.exclusive_read_fill() => {
                // MESI/MOESI unshared fill: grant EXCLUSIVE and book the
                // reader as owner (it may upgrade silently). Memory serves
                // the data, so it still counts as a clean read.
                e.state = DirState::Modified(requester);
                e.seq += 1;
                let seq = e.seq;
                self.stats.reads_clean += 1;
                DirAction::ReadReplyExcl { to: requester, seq }
            }
            DirState::Uncached => {
                e.state = DirState::Shared(SharerSet::singleton(requester));
                self.stats.reads_clean += 1;
                DirAction::ReadReplyClean { to: requester }
            }
            DirState::Shared(mut set) => {
                set.insert(requester);
                e.state = DirState::Shared(set);
                self.stats.reads_clean += 1;
                DirAction::ReadReplyClean { to: requester }
            }
            DirState::Modified(owner) if owner == requester => {
                // Writeback race: the directory still names the requester as
                // owner, so its WriteBack must be in flight. NAK; the retry
                // will find the block Uncached.
                self.stats.naks += 1;
                DirAction::Nak { to: requester }
            }
            DirState::Modified(_) if protocol.home_read_bypass() => {
                // The directoryless-shared-LLC baseline: serve the read
                // straight from memory, no intervention, no state change.
                // The owner is left booked and the new reader untracked —
                // the documented staleness cost of the bypass.
                self.stats.reads_clean += 1;
                DirAction::ReadReplyClean { to: requester }
            }
            DirState::Modified(owner) => {
                e.busy = Some(Busy::CtoC { owner, requester, write_intent: false });
                let act = DirAction::ForwardCtoC {
                    owner,
                    requester,
                    write_intent: false,
                    owner_seq: e.seq,
                };
                self.stats.reads_ctoc += 1;
                act
            }
            DirState::Owned { owner, .. } if owner == requester => {
                // Writeback race, as for Modified.
                self.stats.naks += 1;
                DirAction::Nak { to: requester }
            }
            DirState::Owned { owner, .. } => {
                // MOESI owner-supplies rule: every read of a dirty-shared
                // block is served by the owner, cache to cache.
                e.busy = Some(Busy::CtoC { owner, requester, write_intent: false });
                let act = DirAction::ForwardCtoC {
                    owner,
                    requester,
                    write_intent: false,
                    owner_seq: e.seq,
                };
                self.stats.reads_ctoc += 1;
                act
            }
        }
    }

    /// Handles a `WriteRequest` (ownership request) arriving at the home.
    pub fn handle_write(&mut self, block: BlockAddr, requester: NodeId) -> DirAction {
        let before = self.occupancy_of(block);
        self.stats.lookups += 1;
        let action = self.write_impl(block, requester);
        self.track_occupancy(block, before);
        action
    }

    fn write_impl(&mut self, block: BlockAddr, requester: NodeId) -> DirAction {
        if !self.node_ok("dir_write_bounds", requester) {
            self.stats.naks += 1;
            return DirAction::Nak { to: requester };
        }
        if self.entry(block).busy.is_some() {
            return self.park(block, requester, ReqKind::Write);
        }
        let e = self.entry(block);
        match e.state.clone() {
            DirState::Uncached => {
                e.state = DirState::Modified(requester);
                e.seq += 1;
                DirAction::WriteReplyGrant { to: requester, seq: e.seq }
            }
            DirState::Shared(set) => {
                let targets = {
                    let mut t = set;
                    t.remove(requester);
                    t
                };
                if targets.is_empty() {
                    e.state = DirState::Modified(requester);
                    e.seq += 1;
                    DirAction::WriteReplyGrant { to: requester, seq: e.seq }
                } else {
                    e.busy =
                        Some(Busy::Inval { writer: requester, acks_left: targets.len() as u32 });
                    self.stats.inval_rounds += 1;
                    self.stats.invals_sent += targets.len() as u64;
                    DirAction::Invalidate { targets, writer: requester }
                }
            }
            DirState::Modified(owner) if owner == requester => {
                // Writeback race, as in handle_read.
                self.stats.naks += 1;
                DirAction::Nak { to: requester }
            }
            DirState::Modified(owner) => {
                e.busy = Some(Busy::CtoC { owner, requester, write_intent: true });
                let act = DirAction::ForwardCtoC {
                    owner,
                    requester,
                    write_intent: true,
                    owner_seq: e.seq,
                };
                self.stats.writes_ctoc += 1;
                act
            }
            DirState::Owned { owner, sharers } => {
                // MOESI write to a dirty-shared block: memory is fresh (the
                // retained copyback refreshed it), so this is an invalidation
                // round over owner + sharers, not an ownership transfer.
                let targets = {
                    let mut t = sharers;
                    t.insert(owner);
                    t.remove(requester);
                    t
                };
                if targets.is_empty() {
                    // The owner itself upgrading with no other sharers.
                    e.state = DirState::Modified(requester);
                    e.seq += 1;
                    DirAction::WriteReplyGrant { to: requester, seq: e.seq }
                } else {
                    e.busy =
                        Some(Busy::Inval { writer: requester, acks_left: targets.len() as u32 });
                    self.stats.inval_rounds += 1;
                    self.stats.invals_sent += targets.len() as u64;
                    DirAction::Invalidate { targets, writer: requester }
                }
            }
        }
    }

    /// Handles an `InvalAck`. When the last ack arrives, the waiting writer
    /// gets its grant and pending requests replay.
    pub fn handle_inval_ack(&mut self, block: BlockAddr) -> Completion {
        let before = self.occupancy_of(block);
        self.stats.lookups += 1;
        let c = self.inval_ack_impl(block);
        self.track_occupancy(block, before);
        c
    }

    fn inval_ack_impl(&mut self, block: BlockAddr) -> Completion {
        let e = self.entry(block);
        match e.busy {
            Some(Busy::Inval { acks_left: 0, .. }) => {
                // Was a debug_assert!(acks_left > 0): an inval round can
                // never be parked with zero outstanding acks, so reaching
                // here means a duplicated or forged ack.
                self.record_error(
                    "dir_inval_ack_underflow",
                    format!("InvalAck for {block:?} with zero acks outstanding"),
                );
                Completion::default()
            }
            Some(Busy::Inval { writer, acks_left }) => {
                if acks_left == 1 {
                    e.busy = None;
                    e.state = DirState::Modified(writer);
                    e.seq += 1;
                    let replay = std::mem::take(&mut e.pending).into_iter().collect();
                    Completion {
                        actions: vec![DirAction::WriteReplyGrant { to: writer, seq: e.seq }],
                        replay,
                    }
                } else {
                    e.busy = Some(Busy::Inval { writer, acks_left: acks_left - 1 });
                    Completion::default()
                }
            }
            _ => {
                // Was a debug_assert!(false, ...): promoted so release runs
                // surface the stray ack instead of silently dropping it.
                self.record_error(
                    "dir_inval_ack_stray",
                    format!("InvalAck for {block:?} with no inval round in flight"),
                );
                Completion::default()
            }
        }
    }

    /// Handles a `CopyBack` from `from` — either solicited (the home
    /// forwarded an intervention) or unsolicited (a switch directory
    /// initiated the cache-to-cache transfer and the copyback is *marked*
    /// with the extra sharer pids in `carried`). A *retained* copyback
    /// (MOESI) means the supplier kept the block OWNED instead of
    /// downgrading to Shared; the home books it as the `Owned` owner.
    pub fn handle_copyback(
        &mut self,
        block: BlockAddr,
        from: NodeId,
        carried: SharerSet,
        retained: bool,
    ) -> Completion {
        let before = self.occupancy_of(block);
        self.stats.lookups += 1;
        let c = self.copyback_impl(block, from, carried, retained);
        self.track_occupancy(block, before);
        c
    }

    fn copyback_impl(
        &mut self,
        block: BlockAddr,
        from: NodeId,
        carried: SharerSet,
        retained: bool,
    ) -> Completion {
        if !self.node_ok("dir_copyback_bounds", from) {
            return Completion::default();
        }
        let carried = self.sanitize_carried("dir_copyback_carried_bounds", carried);
        if !carried.is_empty() {
            self.stats.marked_completions += 1;
        }
        let e = self.entry(block);
        // Sharers already recorded beside `from` when the block is Owned —
        // an O owner re-serving a read must not wipe them.
        let prior = match &e.state {
            DirState::Owned { owner, sharers } if *owner == from => sharers.clone(),
            _ => SharerSet::EMPTY,
        };
        match e.busy {
            Some(Busy::CtoC { owner, requester, write_intent }) if owner == from => {
                e.busy = None;
                if write_intent && carried.is_empty() {
                    // Ownership transfer completed owner -> requester. The
                    // bumped seq matches the one `serve_intervention` stamped
                    // on the CtoCData grant (intervened seq + 1).
                    e.state = DirState::Modified(requester);
                    e.seq += 1;
                    let replay = std::mem::take(&mut e.pending).into_iter().collect();
                    return Completion { actions: vec![], replay };
                }
                // Read intervention completed (or a switch-initiated read
                // CtoC completed while we were waiting): memory is fresh;
                // the owner downgraded to Shared — or, MOESI, kept OWNED.
                let mut set =
                    SharerSet::singleton(owner).union(carried.clone()).union(prior.clone());
                if write_intent {
                    // Our waiting transaction was a write but the owner
                    // serviced a read CtoC first: everyone now sharing must
                    // be invalidated before the writer gets ownership.
                    let targets = {
                        let mut t = set.clone();
                        t.remove(requester);
                        t
                    };
                    if targets.is_empty() {
                        e.state = DirState::Modified(requester);
                        e.seq += 1;
                        let replay = std::mem::take(&mut e.pending).into_iter().collect();
                        return Completion {
                            actions: vec![DirAction::WriteReplyGrant { to: requester, seq: e.seq }],
                            replay,
                        };
                    }
                    e.state = if retained {
                        let mut sharers = carried.union(prior);
                        sharers.remove(from);
                        DirState::Owned { owner: from, sharers }
                    } else {
                        DirState::Shared(set)
                    };
                    e.busy =
                        Some(Busy::Inval { writer: requester, acks_left: targets.len() as u32 });
                    self.stats.inval_rounds += 1;
                    self.stats.invals_sent += targets.len() as u64;
                    return Completion {
                        actions: vec![DirAction::Invalidate { targets, writer: requester }],
                        replay: vec![],
                    };
                }
                e.state = if retained {
                    let mut sharers = carried.union(prior);
                    sharers.insert(requester);
                    sharers.remove(from);
                    DirState::Owned { owner: from, sharers }
                } else {
                    set.insert(requester);
                    DirState::Shared(set)
                };
                let replay = std::mem::take(&mut e.pending).into_iter().collect();
                Completion { actions: vec![DirAction::ReadReplyClean { to: requester }], replay }
            }
            _ => {
                // Unsolicited: a switch-directory-initiated CtoC. The block
                // must be recorded with `from` as owner; fold in carried
                // sharers (and keep the owner OWNED when it retained).
                match e.state.clone() {
                    DirState::Modified(owner) if owner == from => {
                        e.state = if retained {
                            DirState::Owned { owner: from, sharers: carried }
                        } else {
                            DirState::Shared(SharerSet::singleton(from).union(carried))
                        };
                        let replay = std::mem::take(&mut e.pending).into_iter().collect();
                        Completion { actions: vec![], replay }
                    }
                    DirState::Owned { owner, sharers } if owner == from => {
                        // An O owner re-served another reader through a
                        // switch; it stays owner either way.
                        e.state = DirState::Owned { owner: from, sharers: sharers.union(carried) };
                        let replay = std::mem::take(&mut e.pending).into_iter().collect();
                        Completion { actions: vec![], replay }
                    }
                    _ => {
                        // Stale copyback (transaction already resolved by a
                        // racing writeback). Memory write is harmless; fold
                        // carried sharers if the state is Shared.
                        if let DirState::Shared(set) = e.state.clone() {
                            e.state = DirState::Shared(set.union(carried));
                        }
                        Completion::default()
                    }
                }
            }
        }
    }

    /// Handles a `WriteBack` (dirty eviction) from `from`. A *marked*
    /// writeback (non-empty `carried`) means a switch directory already
    /// answered some requester with the writeback's data, so those pids
    /// enter the vector as sharers.
    pub fn handle_writeback(
        &mut self,
        block: BlockAddr,
        from: NodeId,
        carried: SharerSet,
    ) -> Completion {
        let before = self.occupancy_of(block);
        self.stats.lookups += 1;
        let c = self.writeback_impl(block, from, carried);
        self.track_occupancy(block, before);
        c
    }

    fn writeback_impl(&mut self, block: BlockAddr, from: NodeId, carried: SharerSet) -> Completion {
        if !self.node_ok("dir_writeback_bounds", from) {
            return Completion::default();
        }
        let carried = self.sanitize_carried("dir_writeback_carried_bounds", carried);
        if !carried.is_empty() {
            self.stats.marked_completions += 1;
        }
        let e = self.entry(block);
        // Sharers recorded beside an OWNED `from` survive its eviction —
        // their copies are still valid (memory is fresh under MOESI).
        let prior = match &e.state {
            DirState::Owned { owner, sharers } if *owner == from => sharers.clone(),
            _ => SharerSet::EMPTY,
        };
        match e.busy {
            Some(Busy::CtoC { owner, requester, write_intent }) if owner == from => {
                // Eviction race: the owner wrote back before our intervention
                // reached it. Serve the waiting requester from memory.
                e.busy = None;
                if write_intent {
                    let targets = carried.union(prior);
                    if targets.is_empty() {
                        e.state = DirState::Modified(requester);
                        e.seq += 1;
                        let replay = std::mem::take(&mut e.pending).into_iter().collect();
                        return Completion {
                            actions: vec![DirAction::WriteReplyGrant { to: requester, seq: e.seq }],
                            replay,
                        };
                    }
                    e.state = DirState::Shared(targets.clone());
                    e.busy =
                        Some(Busy::Inval { writer: requester, acks_left: targets.len() as u32 });
                    self.stats.inval_rounds += 1;
                    self.stats.invals_sent += targets.len() as u64;
                    return Completion {
                        actions: vec![DirAction::Invalidate { targets, writer: requester }],
                        replay: vec![],
                    };
                }
                let set = SharerSet::singleton(requester).union(carried).union(prior);
                e.state = DirState::Shared(set);
                let replay = std::mem::take(&mut e.pending).into_iter().collect();
                Completion { actions: vec![DirAction::ReadReplyClean { to: requester }], replay }
            }
            _ => match e.state.clone() {
                DirState::Modified(owner) if owner == from => {
                    e.state = if carried.is_empty() {
                        DirState::Uncached
                    } else {
                        DirState::Shared(carried)
                    };
                    let replay = std::mem::take(&mut e.pending).into_iter().collect();
                    Completion { actions: vec![], replay }
                }
                DirState::Owned { owner, sharers } if owner == from => {
                    // The O owner evicted; the remaining sharers keep their
                    // clean copies (memory already has the data).
                    let left = sharers.union(carried);
                    e.state =
                        if left.is_empty() { DirState::Uncached } else { DirState::Shared(left) };
                    let replay = std::mem::take(&mut e.pending).into_iter().collect();
                    Completion { actions: vec![], replay }
                }
                _ => {
                    // Stale writeback (e.g. the block was already taken over
                    // by another writer after a read-CtoC downgrade made the
                    // evicting cache a mere sharer). Ignore.
                    Completion::default()
                }
            },
        }
    }

    fn snapshot(&self, block: BlockAddr) -> (DirStateKind, bool) {
        (kind_of(&self.state(block)), self.is_busy(block))
    }

    #[allow(clippy::too_many_arguments)] // flattened HomeTransition fields
    fn emit_fsm<P: Probe>(
        &self,
        probe: &mut P,
        t: Cycle,
        home: NodeId,
        block: BlockAddr,
        req: HomeReq,
        before: (DirStateKind, bool),
        nak: bool,
        queued: bool,
    ) {
        let (to, to_busy) = self.snapshot(block);
        probe.home_fsm(
            t,
            home,
            block,
            HomeTransition { req, from: before.0, from_busy: before.1, to, to_busy, nak, queued },
        );
    }

    /// [`HomeDirectory::handle_read`] with observability: emits the FSM
    /// transition through `probe`.
    pub fn handle_read_probed<P: Probe>(
        &mut self,
        block: BlockAddr,
        requester: NodeId,
        home: NodeId,
        t: Cycle,
        probe: &mut P,
    ) -> DirAction {
        let before = self.snapshot(block);
        let action = self.handle_read(block, requester);
        let nak = matches!(action, DirAction::Nak { .. });
        let queued = matches!(action, DirAction::Queued);
        self.emit_fsm(probe, t, home, block, HomeReq::Read, before, nak, queued);
        action
    }

    /// [`HomeDirectory::handle_write`] with observability.
    pub fn handle_write_probed<P: Probe>(
        &mut self,
        block: BlockAddr,
        requester: NodeId,
        home: NodeId,
        t: Cycle,
        probe: &mut P,
    ) -> DirAction {
        let before = self.snapshot(block);
        let action = self.handle_write(block, requester);
        let nak = matches!(action, DirAction::Nak { .. });
        let queued = matches!(action, DirAction::Queued);
        self.emit_fsm(probe, t, home, block, HomeReq::Write, before, nak, queued);
        action
    }

    /// [`HomeDirectory::handle_inval_ack`] with observability.
    pub fn handle_inval_ack_probed<P: Probe>(
        &mut self,
        block: BlockAddr,
        home: NodeId,
        t: Cycle,
        probe: &mut P,
    ) -> Completion {
        let before = self.snapshot(block);
        let c = self.handle_inval_ack(block);
        self.emit_fsm(probe, t, home, block, HomeReq::InvalAck, before, false, false);
        c
    }

    /// [`HomeDirectory::handle_copyback`] with observability.
    #[allow(clippy::too_many_arguments)] // mirrors handle_copyback + probe context
    pub fn handle_copyback_probed<P: Probe>(
        &mut self,
        block: BlockAddr,
        from: NodeId,
        carried: SharerSet,
        retained: bool,
        home: NodeId,
        t: Cycle,
        probe: &mut P,
    ) -> Completion {
        let before = self.snapshot(block);
        let c = self.handle_copyback(block, from, carried, retained);
        self.emit_fsm(probe, t, home, block, HomeReq::CopyBack, before, false, false);
        c
    }

    /// [`HomeDirectory::handle_writeback`] with observability.
    pub fn handle_writeback_probed<P: Probe>(
        &mut self,
        block: BlockAddr,
        from: NodeId,
        carried: SharerSet,
        home: NodeId,
        t: Cycle,
        probe: &mut P,
    ) -> Completion {
        let before = self.snapshot(block);
        let c = self.handle_writeback(block, from, carried);
        self.emit_fsm(probe, t, home, block, HomeReq::WriteBack, before, false, false);
        c
    }

    /// Number of block entries currently tracked (diagnostic).
    pub fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Test/debug helper: force a block's stable state.
    pub fn force_state(&mut self, block: BlockAddr, state: DirState) {
        let before = self.occupancy_of(block);
        self.force_state_impl(block, state);
        self.track_occupancy(block, before);
    }

    fn force_state_impl(&mut self, block: BlockAddr, state: DirState) {
        match self.blocks.entry(block) {
            Entry::Occupied(mut e) => {
                let e = e.get_mut();
                e.state = state;
                e.busy = None;
                e.pending.clear();
            }
            Entry::Vacant(v) => {
                v.insert(BlockEntry { state, busy: None, pending: VecDeque::new(), seq: 0 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(42);

    #[test]
    fn cold_read_is_clean_and_records_sharer() {
        let mut d = HomeDirectory::default();
        assert_eq!(d.handle_read(B, 3), DirAction::ReadReplyClean { to: 3 });
        assert_eq!(d.state(B), DirState::Shared(SharerSet::singleton(3)));
        assert_eq!(d.stats().reads_clean, 1);
    }

    #[test]
    fn shared_read_accumulates_sharers() {
        let mut d = HomeDirectory::default();
        d.handle_read(B, 1);
        d.handle_read(B, 2);
        match d.state(B) {
            DirState::Shared(s) => {
                assert!(s.contains(1) && s.contains(2));
                assert_eq!(s.len(), 2);
            }
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn cold_write_grants_ownership() {
        let mut d = HomeDirectory::default();
        assert_eq!(d.handle_write(B, 5), DirAction::WriteReplyGrant { to: 5, seq: 1 });
        assert_eq!(d.state(B), DirState::Modified(5));
    }

    #[test]
    fn write_to_shared_invalidates_then_grants() {
        let mut d = HomeDirectory::default();
        d.handle_read(B, 1);
        d.handle_read(B, 2);
        let act = d.handle_write(B, 3);
        let expected: SharerSet = [1u8, 2].into_iter().collect();
        assert_eq!(act, DirAction::Invalidate { targets: expected, writer: 3 });
        assert!(d.is_busy(B));
        // First ack: still waiting.
        assert_eq!(d.handle_inval_ack(B), Completion::default());
        // Second ack: grant.
        let c = d.handle_inval_ack(B);
        assert_eq!(c.actions, vec![DirAction::WriteReplyGrant { to: 3, seq: 1 }]);
        assert_eq!(d.state(B), DirState::Modified(3));
        assert!(!d.is_busy(B));
    }

    #[test]
    fn writer_already_sharing_skips_self_invalidation() {
        let mut d = HomeDirectory::default();
        d.handle_read(B, 1);
        // Upgrade by the only sharer: immediate grant.
        assert_eq!(d.handle_write(B, 1), DirAction::WriteReplyGrant { to: 1, seq: 1 });
        assert_eq!(d.state(B), DirState::Modified(1));
    }

    #[test]
    fn read_to_modified_forwards_ctoc_and_copyback_completes() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        let act = d.handle_read(B, 2);
        assert_eq!(
            act,
            DirAction::ForwardCtoC { owner: 7, requester: 2, write_intent: false, owner_seq: 1 }
        );
        assert_eq!(d.stats().reads_ctoc, 1);
        let c = d.handle_copyback(B, 7, SharerSet::EMPTY, false);
        assert_eq!(c.actions, vec![DirAction::ReadReplyClean { to: 2 }]);
        let expected: SharerSet = [2u8, 7].into_iter().collect();
        assert_eq!(d.state(B), DirState::Shared(expected));
    }

    #[test]
    fn write_to_modified_transfers_ownership() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        let act = d.handle_write(B, 2);
        assert_eq!(
            act,
            DirAction::ForwardCtoC { owner: 7, requester: 2, write_intent: true, owner_seq: 1 }
        );
        let c = d.handle_copyback(B, 7, SharerSet::EMPTY, false);
        assert!(c.actions.is_empty(), "ownership transfer needs no home reply");
        assert_eq!(d.state(B), DirState::Modified(2));
    }

    #[test]
    fn requests_during_busy_are_queued_and_replayed() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        d.handle_read(B, 1); // busy: CtoC
        assert_eq!(d.handle_read(B, 2), DirAction::Queued);
        assert_eq!(d.handle_write(B, 3), DirAction::Queued);
        let c = d.handle_copyback(B, 7, SharerSet::EMPTY, false);
        assert_eq!(
            c.replay,
            vec![
                QueuedReq { block: B, requester: 2, kind: ReqKind::Read },
                QueuedReq { block: B, requester: 3, kind: ReqKind::Write },
            ]
        );
    }

    #[test]
    fn pending_queue_overflow_naks() {
        let mut d = HomeDirectory::new(2);
        d.handle_write(B, 7);
        d.handle_read(B, 1); // busy
        assert_eq!(d.handle_read(B, 2), DirAction::Queued);
        assert_eq!(d.handle_read(B, 3), DirAction::Queued);
        assert_eq!(d.handle_read(B, 4), DirAction::Nak { to: 4 });
        assert_eq!(d.stats().naks, 1);
    }

    #[test]
    fn writeback_race_naks_the_owner_request() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        // Owner 7 asks again while the directory still names it owner:
        // only possible when its writeback is in flight.
        assert_eq!(d.handle_read(B, 7), DirAction::Nak { to: 7 });
        assert_eq!(d.handle_write(B, 7), DirAction::Nak { to: 7 });
        // Writeback lands; retries now succeed.
        d.handle_writeback(B, 7, SharerSet::EMPTY);
        assert_eq!(d.state(B), DirState::Uncached);
        assert_eq!(d.handle_read(B, 7), DirAction::ReadReplyClean { to: 7 });
    }

    #[test]
    fn eviction_race_during_read_ctoc_serves_requester_from_memory() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        d.handle_read(B, 2); // busy CtoC to owner 7
                             // Owner evicts before the intervention arrives.
        let c = d.handle_writeback(B, 7, SharerSet::EMPTY);
        assert_eq!(c.actions, vec![DirAction::ReadReplyClean { to: 2 }]);
        assert_eq!(d.state(B), DirState::Shared(SharerSet::singleton(2)));
    }

    #[test]
    fn eviction_race_during_write_ctoc_grants_from_memory() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        d.handle_write(B, 2); // busy CtoC (write intent)
        let c = d.handle_writeback(B, 7, SharerSet::EMPTY);
        assert_eq!(c.actions, vec![DirAction::WriteReplyGrant { to: 2, seq: 2 }]);
        assert_eq!(d.state(B), DirState::Modified(2));
    }

    #[test]
    fn marked_copyback_installs_switch_served_sharers() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        // Switch directory served requester 4 directly; owner's copyback is
        // marked with pid 4 and arrives unsolicited.
        let c = d.handle_copyback(B, 7, SharerSet::singleton(4), false);
        assert!(c.actions.is_empty());
        let expected: SharerSet = [4u8, 7].into_iter().collect();
        assert_eq!(d.state(B), DirState::Shared(expected));
        assert_eq!(d.stats().marked_completions, 1);
    }

    #[test]
    fn marked_writeback_installs_switch_served_sharers() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        // The switch replied to requester 4 from the writeback's data.
        let c = d.handle_writeback(B, 7, SharerSet::singleton(4));
        assert!(c.actions.is_empty());
        assert_eq!(d.state(B), DirState::Shared(SharerSet::singleton(4)));
    }

    #[test]
    fn copyback_while_write_busy_triggers_invalidation_round() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        d.handle_write(B, 2); // home wants ownership moved to 2
                              // But a switch-initiated *read* CtoC completed first: owner 7 copies
                              // back marked with new sharer 4. Sharers {7,4} must be invalidated
                              // before 2 can own the block.
        let c = d.handle_copyback(B, 7, SharerSet::singleton(4), false);
        let expected: SharerSet = [4u8, 7].into_iter().collect();
        assert_eq!(c.actions, vec![DirAction::Invalidate { targets: expected, writer: 2 }]);
        d.handle_inval_ack(B);
        let c = d.handle_inval_ack(B);
        assert_eq!(c.actions, vec![DirAction::WriteReplyGrant { to: 2, seq: 2 }]);
        assert_eq!(d.state(B), DirState::Modified(2));
    }

    #[test]
    fn stale_writeback_is_ignored() {
        let mut d = HomeDirectory::default();
        d.handle_read(B, 1);
        // Writeback from a node that is not the owner: dropped.
        let c = d.handle_writeback(B, 9, SharerSet::EMPTY);
        assert_eq!(c, Completion::default());
        assert_eq!(d.state(B), DirState::Shared(SharerSet::singleton(1)));
    }

    #[test]
    fn lookups_and_occupancy_peaks_tracked() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7); // lookup 1
        d.handle_read(B, 2); // lookup 2: busy CtoC (busy_now = 1)
        d.handle_write(BlockAddr(43), 5); // lookup 3
        d.handle_write(BlockAddr(43), 6); // lookup 4: busy CtoC (busy_now = 2)
        d.handle_read(B, 3); // lookup 5: parked (pending_now = 1)
        assert_eq!(d.stats().lookups, 5);
        assert_eq!(d.stats().peak_busy, 2);
        assert_eq!(d.stats().peak_pending, 1);
        // Completions drain the occupancy but peaks persist.
        d.handle_copyback(B, 7, SharerSet::EMPTY, false);
        d.handle_copyback(BlockAddr(43), 5, SharerSet::EMPTY, false);
        assert!(!d.is_busy(B) && !d.is_busy(BlockAddr(43)));
        assert_eq!(d.stats().peak_busy, 2);
        // Merge takes the max of peaks, the sum of lookups.
        let mut a = d.stats();
        let b = DirStats { peak_busy: 7, lookups: 10, ..DirStats::default() };
        a.merge(&b);
        assert_eq!(a.peak_busy, 7);
        assert_eq!(a.lookups, 17);
    }

    #[test]
    fn out_of_range_requester_is_rejected_with_recorded_error() {
        let mut d = HomeDirectory::with_nodes(8, 16);
        assert_eq!(d.handle_read(B, 200), DirAction::Nak { to: 200 });
        assert_eq!(d.handle_write(B, 16), DirAction::Nak { to: 16 });
        // No silent wrap: nothing entered the directory state.
        assert_eq!(d.state(B), DirState::Uncached);
        let errs = d.take_errors();
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].context, "dir_read_bounds");
        assert_eq!(errs[1].context, "dir_write_bounds");
        assert!(errs[0].detail.contains("200"));
        assert!(!d.has_errors());
    }

    #[test]
    fn out_of_range_carried_pids_are_filtered_and_reported() {
        let mut d = HomeDirectory::with_nodes(8, 16);
        d.handle_write(B, 7);
        let carried: SharerSet = [4u8, 40].into_iter().collect();
        d.handle_copyback(B, 7, carried, false);
        // The valid pid folded in; the bogus one was dropped, not wrapped.
        let expected: SharerSet = [4u8, 7].into_iter().collect();
        assert_eq!(d.state(B), DirState::Shared(expected));
        let errs = d.take_errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].context, "dir_copyback_carried_bounds");
        assert!(errs[0].detail.contains("40"));
    }

    #[test]
    fn out_of_range_completion_sender_is_dropped() {
        let mut d = HomeDirectory::with_nodes(8, 16);
        d.handle_write(B, 7);
        assert_eq!(d.handle_writeback(B, 99, SharerSet::EMPTY), Completion::default());
        assert_eq!(d.state(B), DirState::Modified(7));
        assert_eq!(d.take_errors()[0].context, "dir_writeback_bounds");
    }

    #[test]
    fn stray_inval_ack_is_recorded_not_asserted() {
        let mut d = HomeDirectory::default();
        assert_eq!(d.handle_inval_ack(B), Completion::default());
        let errs = d.take_errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].context, "dir_inval_ack_stray");
    }

    #[test]
    fn compact_drops_quiescent_blocks() {
        let mut d = HomeDirectory::default();
        d.handle_write(B, 7);
        d.handle_writeback(B, 7, SharerSet::EMPTY);
        assert_eq!(d.state(B), DirState::Uncached);
        assert!(d.tracked_blocks() > 0);
        d.compact();
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn mesi_cold_read_grants_exclusive_and_books_owner() {
        let mut d = HomeDirectory::with_protocol(8, 16, Protocol::Mesi);
        assert_eq!(d.handle_read(B, 3), DirAction::ReadReplyExcl { to: 3, seq: 1 });
        // Booked as ownership: a later reader goes through an intervention.
        assert_eq!(d.state(B), DirState::Modified(3));
        assert_eq!(d.stats().reads_clean, 1);
        assert_eq!(
            d.handle_read(B, 5),
            DirAction::ForwardCtoC { owner: 3, requester: 5, write_intent: false, owner_seq: 1 }
        );
        // Under MSI the same cold read stays a plain shared fill.
        let mut msi = HomeDirectory::with_nodes(8, 16);
        assert_eq!(msi.handle_read(B, 3), DirAction::ReadReplyClean { to: 3 });
        assert_eq!(msi.state(B), DirState::Shared(SharerSet::singleton(3)));
    }

    #[test]
    fn dls_read_to_modified_bypasses_the_intervention() {
        let mut d = HomeDirectory::with_protocol(8, 16, Protocol::Dls);
        d.handle_write(B, 7);
        // The directoryless baseline serves the read from memory: no busy
        // state, no forwarded intervention, owner still booked.
        assert_eq!(d.handle_read(B, 2), DirAction::ReadReplyClean { to: 2 });
        assert_eq!(d.state(B), DirState::Modified(7));
        assert!(!d.is_busy(B));
        assert_eq!(d.stats().reads_ctoc, 0);
        assert_eq!(d.stats().reads_clean, 1);
        // The owner's own writeback race still NAKs.
        assert_eq!(d.handle_read(B, 7), DirAction::Nak { to: 7 });
    }

    #[test]
    fn moesi_retained_copyback_enters_owned_and_owner_keeps_serving() {
        let mut d = HomeDirectory::with_protocol(8, 16, Protocol::Moesi);
        d.handle_write(B, 7);
        d.handle_read(B, 2); // ForwardCtoC to 7
        let c = d.handle_copyback(B, 7, SharerSet::EMPTY, true);
        assert_eq!(c.actions, vec![DirAction::ReadReplyClean { to: 2 }]);
        assert_eq!(d.state(B), DirState::Owned { owner: 7, sharers: SharerSet::singleton(2) });
        // Next read is again owner-supplied, and the retained copyback
        // accumulates the new sharer without losing the old one.
        assert_eq!(
            d.handle_read(B, 4),
            DirAction::ForwardCtoC { owner: 7, requester: 4, write_intent: false, owner_seq: 1 }
        );
        assert_eq!(d.stats().reads_ctoc, 2);
        d.handle_copyback(B, 7, SharerSet::EMPTY, true);
        let expected: SharerSet = [2u8, 4].into_iter().collect();
        assert_eq!(d.state(B), DirState::Owned { owner: 7, sharers: expected });
    }

    #[test]
    fn moesi_write_to_owned_invalidates_owner_and_sharers() {
        let mut d = HomeDirectory::with_protocol(8, 16, Protocol::Moesi);
        d.handle_write(B, 7);
        d.handle_read(B, 2);
        d.handle_copyback(B, 7, SharerSet::EMPTY, true); // Owned{7, {2}}
        let act = d.handle_write(B, 3);
        let expected: SharerSet = [2u8, 7].into_iter().collect();
        assert_eq!(act, DirAction::Invalidate { targets: expected, writer: 3 });
        d.handle_inval_ack(B);
        let c = d.handle_inval_ack(B);
        assert_eq!(c.actions, vec![DirAction::WriteReplyGrant { to: 3, seq: 2 }]);
        assert_eq!(d.state(B), DirState::Modified(3));
    }

    #[test]
    fn moesi_owner_upgrade_skips_self_invalidation() {
        let mut d = HomeDirectory::with_protocol(8, 16, Protocol::Moesi);
        d.handle_write(B, 7);
        d.handle_read(B, 2);
        d.handle_copyback(B, 7, SharerSet::EMPTY, true); // Owned{7, {2}}
                                                         // The owner upgrading only invalidates the sharer, not itself.
        assert_eq!(
            d.handle_write(B, 7),
            DirAction::Invalidate { targets: SharerSet::singleton(2), writer: 7 }
        );
        let c = d.handle_inval_ack(B);
        assert_eq!(c.actions, vec![DirAction::WriteReplyGrant { to: 7, seq: 2 }]);
        assert_eq!(d.state(B), DirState::Modified(7));
    }

    #[test]
    fn moesi_owner_writeback_leaves_sharers_clean() {
        let mut d = HomeDirectory::with_protocol(8, 16, Protocol::Moesi);
        d.handle_write(B, 7);
        d.handle_read(B, 2);
        d.handle_copyback(B, 7, SharerSet::EMPTY, true); // Owned{7, {2}}
        let c = d.handle_writeback(B, 7, SharerSet::EMPTY);
        assert_eq!(c, Completion::default());
        assert_eq!(d.state(B), DirState::Shared(SharerSet::singleton(2)));
    }

    #[test]
    fn moesi_eviction_race_during_owned_read_merges_prior_sharers() {
        let mut d = HomeDirectory::with_protocol(8, 16, Protocol::Moesi);
        d.handle_write(B, 7);
        d.handle_read(B, 2);
        d.handle_copyback(B, 7, SharerSet::EMPTY, true); // Owned{7, {2}}
        d.handle_read(B, 4); // busy CtoC to owner 7
                             // Owner evicts before the intervention lands: requester is served
                             // from memory and sharer 2's copy survives.
        let c = d.handle_writeback(B, 7, SharerSet::EMPTY);
        assert_eq!(c.actions, vec![DirAction::ReadReplyClean { to: 4 }]);
        let expected: SharerSet = [2u8, 4].into_iter().collect();
        assert_eq!(d.state(B), DirState::Shared(expected));
    }
}
