//! Route objects: the ordered switches and directed links a message
//! traverses.
//!
//! A [`Route`] always satisfies `links.len() == switches.len() + 1`:
//! `links[0]` carries the message into `switches[0]`, `links[i]` connects
//! `switches[i-1]` to `switches[i]`, and the last link delivers to the
//! endpoint. Messages *originated by a switch directory* start at their
//! first downstream switch (the originating switch is excluded so the hop
//! executor never re-snoops the entry that generated the message).
//!
//! Forward and backward directions use disjoint link identities: the BMIN
//! provides separate physical resources per direction (paper §3.1,
//! "Separating the paths enables separate resources and reduces the
//! possibility of deadlocks").

use crate::topology::{Bmin, SwitchId};
use dresar_faults::SimError;
use dresar_types::NodeId;

/// A directed physical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Processor injection link (forward, proc -> stage 0).
    ProcUp(NodeId),
    /// Processor ejection link (backward, stage 0 -> proc).
    ProcDown(NodeId),
    /// Memory ejection link (forward, top stage -> memory).
    MemUp(NodeId),
    /// Memory injection link (backward, memory -> top stage).
    MemDown(NodeId),
    /// Inter-stage link, forward (up) direction. Identified by the lower
    /// switch and its up-port.
    Up {
        /// Stage of the lower switch.
        stage: u8,
        /// Index of the lower switch.
        lower: u16,
        /// Up-port on the lower switch.
        port: u8,
    },
    /// Inter-stage link, backward (down) direction; mirrors [`LinkId::Up`].
    Down {
        /// Stage of the lower switch.
        stage: u8,
        /// Index of the lower switch.
        lower: u16,
        /// Up-port on the lower switch (canonical pair identity).
        port: u8,
    },
}

/// A hop-by-hop route through the BMIN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Switches traversed, in order. May be empty (switch-originated
    /// message already adjacent to its destination).
    pub switches: Vec<SwitchId>,
    /// Links traversed, in order; always `switches.len() + 1` long.
    pub links: Vec<LinkId>,
}

/// A single hop: the link taken to arrive somewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Link traversed.
    pub link: LinkId,
    /// Switch reached, or `None` for the final (endpoint) hop.
    pub switch: Option<SwitchId>,
}

impl Route {
    /// Sanity invariant.
    pub fn well_formed(&self) -> bool {
        self.links.len() == self.switches.len() + 1
    }

    /// Iterates hops: each link paired with the switch it leads to (`None`
    /// for the endpoint-delivering last link).
    pub fn hops(&self) -> impl Iterator<Item = Hop> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &link)| Hop { link, switch: self.switches.get(i).copied() })
    }

    /// Number of switch traversals.
    pub fn switch_hops(&self) -> usize {
        self.switches.len()
    }
}

/// Structure-of-arrays table of all n² static routes in one direction
/// (forward proc->mem or backward mem->proc).
///
/// Static butterfly routes have a fixed shape — every route traverses
/// exactly `stages` switches and `stages + 1` links — so the table stores
/// two flat arenas indexed by `(a * n + b) * stride` instead of n²
/// individually boxed [`Route`]s. At 256 nodes this replaces ~130k heap
/// route objects (each an `Rc` plus two `Vec`s) per `System` with two
/// allocations, which is what keeps the 256-node machine inside the
/// hostprof VmHWM budget.
#[derive(Debug, Clone)]
pub struct RouteTable {
    nodes: usize,
    /// Switches per route (= BMIN stages).
    sw_stride: usize,
    /// Links per route (= stages + 1).
    link_stride: usize,
    switches: Vec<SwitchId>,
    links: Vec<LinkId>,
}

impl RouteTable {
    fn build(bmin: &Bmin, make: impl Fn(&Bmin, NodeId, NodeId) -> Route) -> Self {
        let n = bmin.nodes();
        let sw_stride = bmin.stages();
        let link_stride = sw_stride + 1;
        let mut switches = Vec::with_capacity(n * n * sw_stride);
        let mut links = Vec::with_capacity(n * n * link_stride);
        for a in 0..n {
            for b in 0..n {
                let r = make(bmin, a as NodeId, b as NodeId);
                debug_assert_eq!(r.switches.len(), sw_stride);
                debug_assert_eq!(r.links.len(), link_stride);
                switches.extend_from_slice(&r.switches);
                links.extend_from_slice(&r.links);
            }
        }
        RouteTable { nodes: n, sw_stride, link_stride, switches, links }
    }

    /// Table of every forward route proc `a` -> mem `b`.
    pub fn forward(bmin: &Bmin) -> Self {
        Self::build(bmin, forward)
    }

    /// Table of every backward route mem `a` -> proc `b`.
    pub fn backward(bmin: &Bmin) -> Self {
        Self::build(bmin, backward)
    }

    /// Switches of route `a -> b`, in traversal order.
    #[inline]
    pub fn switches(&self, a: NodeId, b: NodeId) -> &[SwitchId] {
        let i = (a as usize * self.nodes + b as usize) * self.sw_stride;
        &self.switches[i..i + self.sw_stride]
    }

    /// Links of route `a -> b`, in traversal order.
    #[inline]
    pub fn links(&self, a: NodeId, b: NodeId) -> &[LinkId] {
        let i = (a as usize * self.nodes + b as usize) * self.link_stride;
        &self.links[i..i + self.link_stride]
    }

    /// Switches per route (the BMIN stage count).
    pub fn switches_per_route(&self) -> usize {
        self.sw_stride
    }
}

/// Derives the inter-stage link id between two adjacent path switches.
/// `upper.m_part = lower.m_part * d + port`, so the port is recoverable
/// from the upper switch alone.
fn link_between(bmin: &Bmin, lower: SwitchId, upper: SwitchId, up_dir: bool) -> LinkId {
    debug_assert_eq!(lower.stage + 1, upper.stage);
    let d = bmin.radix();
    let upper_m_part = upper.index as usize % d.pow(upper.stage as u32);
    let port = (upper_m_part % d) as u8;
    if up_dir {
        LinkId::Up { stage: lower.stage, lower: lower.index, port }
    } else {
        LinkId::Down { stage: lower.stage, lower: lower.index, port }
    }
}

/// Builds the forward route processor `p` -> memory `m`.
pub fn forward(bmin: &Bmin, p: NodeId, m: NodeId) -> Route {
    let switches = bmin.path_switches(p, m);
    let mut links = Vec::with_capacity(switches.len() + 1);
    links.push(LinkId::ProcUp(p));
    for w in switches.windows(2) {
        links.push(link_between(bmin, w[0], w[1], true));
    }
    links.push(LinkId::MemUp(m));
    Route { switches, links }
}

/// Builds the backward route memory `m` -> processor `p`.
pub fn backward(bmin: &Bmin, m: NodeId, p: NodeId) -> Route {
    let mut switches = bmin.path_switches(p, m);
    switches.reverse();
    let mut links = Vec::with_capacity(switches.len() + 1);
    links.push(LinkId::MemDown(m));
    for w in switches.windows(2) {
        links.push(link_between(bmin, w[1], w[0], false));
    }
    links.push(LinkId::ProcDown(p));
    Route { switches, links }
}

/// Builds a processor-to-processor route `a` -> `b` (cache-to-cache data,
/// owner NAKs): up the forward links to the lowest common turnaround
/// switch, then down the backward links. `tiebreak` (typically a block
/// hash) picks among the equivalent turnaround switches.
///
/// The turnaround switch covers both endpoints by construction, so a
/// healthy topology never returns `Err`; the error is typed (rather than a
/// panic) so the system simulator can surface it through
/// `ExecutionReport::sim_errors` and keep running.
pub fn proc_to_proc(bmin: &Bmin, a: NodeId, b: NodeId, tiebreak: u64) -> Result<Route, SimError> {
    let turn = bmin.turnaround_switch(a, b, tiebreak);
    let up = bmin.up_path(a, turn).ok_or_else(|| SimError::Route {
        context: "proc_to_proc",
        detail: format!("turnaround switch {turn:?} does not reach its source proc {a}"),
    })?;
    let down = bmin.down_path(turn, b).ok_or_else(|| SimError::Route {
        context: "proc_to_proc",
        detail: format!("turnaround switch {turn:?} does not reach destination proc {b}"),
    })?;

    let mut switches = Vec::with_capacity(up.len() + 1 + down.len());
    switches.extend_from_slice(&up);
    switches.push(turn);
    switches.extend_from_slice(&down);

    let mut links = Vec::with_capacity(switches.len() + 1);
    links.push(LinkId::ProcUp(a));
    for w in switches.windows(2) {
        if w[0].stage < w[1].stage {
            links.push(link_between(bmin, w[0], w[1], true));
        } else {
            links.push(link_between(bmin, w[1], w[0], false));
        }
    }
    links.push(LinkId::ProcDown(b));
    Ok(Route { switches, links })
}

/// Builds the route for a message *originated by* switch `sw` (a CtoC
/// request, retry or writeback-data reply from the switch directory's
/// "CtoC & Reply unit") heading down to processor `p`. Returns `None` if
/// `p` is not down-reachable — the placement invariant guarantees it is for
/// every message a correct switch directory generates, so callers treat
/// `None` as a protocol bug.
pub fn from_switch_to_proc(bmin: &Bmin, sw: SwitchId, p: NodeId) -> Option<Route> {
    let below = bmin.down_path(sw, p)?;
    let mut links = Vec::with_capacity(below.len() + 1);
    let mut prev = sw;
    for &next in &below {
        links.push(link_between(bmin, next, prev, false));
        prev = next;
    }
    links.push(LinkId::ProcDown(p));
    Some(Route { switches: below, links })
}

/// Like [`from_switch_to_proc`], but handles targets that are *not*
/// down-reachable from `sw` by ascending (forward links) to the lowest
/// stage that covers the target and turning around — needed for switch-
/// generated NAKs to *foreign* CtoC requesters (a CtoC request sunk on a
/// TRANSIENT entry names a requester that may live under a different
/// subtree than the message's down-path). `tiebreak` picks among the
/// equivalent turnaround switches.
///
/// Like [`proc_to_proc`], failure is impossible on a healthy topology; a
/// typed [`SimError`] (instead of a panic) lets fault-injected runs record
/// the anomaly and continue.
pub fn from_switch_to_proc_via(
    bmin: &Bmin,
    sw: SwitchId,
    p: NodeId,
    tiebreak: u64,
) -> Result<Route, SimError> {
    if bmin.reaches_down(sw, p) {
        return from_switch_to_proc(bmin, sw, p).ok_or_else(|| SimError::Route {
            context: "from_switch_to_proc_via",
            detail: format!("switch {sw:?} claims to reach proc {p} but has no down-path"),
        });
    }
    let d = bmin.radix();
    let k = sw.stage as usize;
    // A representative processor under `sw` determines the lowest stage
    // whose subtree also covers `p`.
    let rep_p = (sw.index as usize / d.pow(k as u32)) * d.pow((k + 1) as u32);
    let turn_k = bmin.turnaround_stage(rep_p as NodeId, p);
    // True invariant: not down-reachable implies a strictly higher
    // turnaround stage. A violation is a topology bug, not a fault.
    debug_assert!(turn_k > k, "not down-reachable yet same/lower turnaround stage");

    // Ascend hop by hop: each up-hop drops the last p-digit and appends a
    // free m-digit (drawn from `tiebreak` to spread load).
    let mut switches = Vec::new();
    let mut links = Vec::new();
    let mut p_part = sw.index as usize / d.pow(k as u32);
    let mut m_part = sw.index as usize % d.pow(k as u32);
    let mut tb = tiebreak as usize;
    let mut prev = sw;
    for j in (k + 1)..=turn_k {
        p_part /= d;
        m_part = m_part * d + (tb % d);
        tb /= d;
        let next = SwitchId { stage: j as u8, index: (p_part * d.pow(j as u32) + m_part) as u16 };
        links.push(link_between(bmin, prev, next, true));
        switches.push(next);
        prev = next;
    }
    let below = bmin.down_path(prev, p).ok_or_else(|| SimError::Route {
        context: "from_switch_to_proc_via",
        detail: format!("turnaround switch {prev:?} does not cover target proc {p}"),
    })?;
    for &next in &below {
        links.push(link_between(bmin, next, prev, false));
        prev = next;
    }
    switches.extend_from_slice(&below);
    links.push(LinkId::ProcDown(p));
    Ok(Route { switches, links })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b16() -> Bmin {
        Bmin::new(16, 4)
    }

    #[test]
    fn forward_route_shape() {
        let r = forward(&b16(), 5, 9);
        assert!(r.well_formed());
        assert_eq!(r.switch_hops(), 2);
        assert_eq!(r.links[0], LinkId::ProcUp(5));
        assert_eq!(*r.links.last().unwrap(), LinkId::MemUp(9));
        assert!(matches!(r.links[1], LinkId::Up { .. }));
    }

    #[test]
    fn backward_route_mirrors_forward() {
        let b = b16();
        let f = forward(&b, 5, 9);
        let r = backward(&b, 9, 5);
        assert!(r.well_formed());
        let mut f_switches = f.switches.clone();
        f_switches.reverse();
        assert_eq!(r.switches, f_switches);
        // Same physical link pair, opposite direction.
        if let (
            LinkId::Up { stage, lower, port },
            LinkId::Down { stage: s2, lower: l2, port: p2 },
        ) = (f.links[1], r.links[1])
        {
            assert_eq!((stage, lower, port), (s2, l2, p2));
        } else {
            panic!("expected inter-stage links");
        }
    }

    #[test]
    fn proc_to_proc_same_quad_turns_at_stage0() {
        let r = proc_to_proc(&b16(), 1, 2, 0).unwrap();
        assert!(r.well_formed());
        assert_eq!(r.switch_hops(), 1);
        assert_eq!(r.switches[0].stage, 0);
        assert_eq!(r.links, vec![LinkId::ProcUp(1), LinkId::ProcDown(2)]);
    }

    #[test]
    fn proc_to_proc_cross_quad_turns_at_top() {
        let r = proc_to_proc(&b16(), 1, 9, 7).unwrap();
        assert!(r.well_formed());
        assert_eq!(r.switch_hops(), 3); // up stage0, turn stage1, down stage0
        assert_eq!(r.switches[1].stage, 1);
    }

    #[test]
    fn switch_originated_route_descends_only() {
        let b = b16();
        // Top-stage switch on the path of owner 6 to home 9.
        let sw = b.switch_on_path(6, 9, 1);
        let r = from_switch_to_proc(&b, sw, 6).expect("owner reachable");
        assert!(r.well_formed());
        assert_eq!(r.switch_hops(), 1);
        assert_eq!(r.switches[0].stage, 0);
        assert!(matches!(r.links[0], LinkId::Down { .. }));
        assert_eq!(*r.links.last().unwrap(), LinkId::ProcDown(6));
    }

    #[test]
    fn switch_originated_route_from_stage0_is_single_link() {
        let b = b16();
        let sw = b.switch_on_path(6, 9, 0);
        let r = from_switch_to_proc(&b, sw, 6).unwrap();
        assert_eq!(r.switch_hops(), 0);
        assert_eq!(r.links, vec![LinkId::ProcDown(6)]);
    }

    #[test]
    fn unreachable_switch_origin_returns_none() {
        let b = b16();
        let sw = b.switch_on_path(0, 9, 0); // serves quad 0..4
        assert!(from_switch_to_proc(&b, sw, 12).is_none());
    }

    #[test]
    fn via_route_matches_direct_when_reachable() {
        let b = b16();
        let sw = b.switch_on_path(6, 9, 1);
        assert_eq!(
            from_switch_to_proc_via(&b, sw, 6, 3).unwrap(),
            from_switch_to_proc(&b, sw, 6).unwrap()
        );
    }

    #[test]
    fn via_route_ascends_for_foreign_targets() {
        let b = b16();
        // Stage-0 switch of quad 0 must reach processor 12 by turning
        // around at the top stage.
        let sw = b.switch_on_path(0, 9, 0);
        let r = from_switch_to_proc_via(&b, sw, 12, 5).unwrap();
        assert!(r.well_formed());
        assert!(matches!(r.links[0], LinkId::Up { .. }), "must ascend first");
        assert_eq!(*r.links.last().unwrap(), LinkId::ProcDown(12));
        // Stage sequence rises then falls.
        let stages: Vec<u8> = r.switches.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec![1, 0]);
    }

    /// The via-route always terminates at the target, with consistent
    /// stage steps, for every (switch, target) and sampled tiebreaks.
    #[test]
    fn via_route_always_routable() {
        for bmin in [Bmin::new(16, 4), Bmin::new(16, 2)] {
            for o in 0u8..16 {
                for h in 0u8..16 {
                    for target in 0u8..16 {
                        for tb in [0u64, 1, 5, 63, 255] {
                            for sw in bmin.path_switches(o, h) {
                                let r = from_switch_to_proc_via(&bmin, sw, target, tb).unwrap();
                                assert!(r.well_formed(), "o={o} h={h} t={target} tb={tb}");
                                assert_eq!(*r.links.last().unwrap(), LinkId::ProcDown(target));
                                for w in r.switches.windows(2) {
                                    assert_eq!((w[0].stage as i16 - w[1].stage as i16).abs(), 1);
                                }
                                if let Some(first) = r.switches.first() {
                                    assert_eq!(
                                        (first.stage as i16 - sw.stage as i16).abs(),
                                        1,
                                        "first hop adjacent to origin"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// All route constructors produce well-formed routes whose stages
    /// step by one. Exhaustive over endpoint pairs, sampled tiebreaks.
    #[test]
    fn routes_well_formed() {
        for bmin in [Bmin::new(16, 4), Bmin::new(16, 2)] {
            for p in 0u8..16 {
                for m in 0u8..16 {
                    for tb in [0u64, 1, 13, 63] {
                        for r in [
                            forward(&bmin, p, m),
                            backward(&bmin, m, p),
                            proc_to_proc(&bmin, p, m, tb).unwrap(),
                        ] {
                            assert!(r.well_formed(), "p={p} m={m} tb={tb}");
                            for w in r.switches.windows(2) {
                                let diff = (w[0].stage as i16 - w[1].stage as i16).abs();
                                assert_eq!(diff, 1);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Hops iteration pairs every link with its destination switch and
    /// ends with the endpoint hop. Exhaustive over endpoint pairs.
    #[test]
    fn hops_pairing() {
        let bmin = Bmin::new(16, 2);
        for p in 0u8..16 {
            for m in 0u8..16 {
                let r = forward(&bmin, p, m);
                let hops: Vec<_> = r.hops().collect();
                assert_eq!(hops.len(), r.links.len());
                assert!(hops.last().unwrap().switch.is_none());
                for h in &hops[..hops.len() - 1] {
                    assert!(h.switch.is_some());
                }
            }
        }
    }

    /// The SoA table returns exactly what the per-pair constructors build,
    /// for every pair, at several shapes including the deep ones.
    #[test]
    fn route_table_matches_constructors() {
        for (n, d) in [(16usize, 4usize), (16, 2), (64, 4), (256, 4)] {
            let bmin = Bmin::new(n, d);
            let fwd = RouteTable::forward(&bmin);
            let bwd = RouteTable::backward(&bmin);
            assert_eq!(fwd.switches_per_route(), bmin.stages());
            for a in 0..n {
                for b in 0..n {
                    let (a, b) = (a as NodeId, b as NodeId);
                    let f = forward(&bmin, a, b);
                    assert_eq!(fwd.switches(a, b), &f.switches[..], "fwd n={n} d={d}");
                    assert_eq!(fwd.links(a, b), &f.links[..]);
                    let r = backward(&bmin, a, b);
                    assert_eq!(bwd.switches(a, b), &r.switches[..], "bwd n={n} d={d}");
                    assert_eq!(bwd.links(a, b), &r.links[..]);
                }
            }
        }
    }

    /// Every switch directory message target in the protocol is
    /// routable: any switch on the owner->home path reaches the owner.
    #[test]
    fn switch_messages_routable() {
        let bmin = Bmin::new(16, 4);
        for o in 0u8..16 {
            for h in 0u8..16 {
                for sw in bmin.path_switches(o, h) {
                    assert!(from_switch_to_proc(&bmin, sw, o).is_some(), "o={o} h={h}");
                }
            }
        }
    }
}
