//! The d-ary baseline (delta) BMIN topology.
//!
//! For `N = d^s` nodes the network has `s` stages of `N/d` switches. Each
//! switch has `d` down-ports (toward processors) and `d` up-ports (toward
//! memories); with `d = 4` a switch is the paper's "8x8 crossbar", with
//! `d = 2` a "4x4".
//!
//! ## Switch identity
//!
//! Writing node ids as `s` base-`d` digits, the unique path from processor
//! `p` to memory `m` passes, at stage `k`, the switch labelled by the
//! concatenation of the **high `s-1-k` digits of `p`** and the **high `k`
//! digits of `m`** — `s-1` digits total, so each stage has `d^(s-1) = N/d`
//! switches. Stage 0's switch is `p / d` (it depends only on the
//! processor); the top stage's switch is `m / d` (it depends only on the
//! memory). Consequently:
//!
//! * every request to home `m` passes the top-stage switch `m / d`;
//! * every message from processor `p` passes the stage-0 switch `p / d`;
//! * the `p → m` and `m → p` paths traverse the *same* switches (the BMIN
//!   is bidirectional with separate forward/backward link resources);
//! * from a stage-`k` switch, the processors reachable downward are exactly
//!   those sharing the switch's `p`-digit prefix — a contiguous group of
//!   `d^(k+1)` nodes (the "tree" the paper's hierarchical caching exploits).
//!
//! These facts give the *switch-directory placement invariant* documented in
//! DESIGN.md: an entry installed along a write-reply path `home → owner` is
//! (a) visible to any later read that shares path suffix toward that home,
//! and (b) guaranteed to be re-traversed by the owner's copyback/writeback
//! toward that home, which cleans it up.

use dresar_types::NodeId;

/// Identity of a switch: its stage and index within the stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId {
    /// Stage, 0 = adjacent to the processors.
    pub stage: u8,
    /// Index within the stage, in `0..N/d`.
    pub index: u16,
}

/// The BMIN topology descriptor. Cheap to copy; all route methods are pure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bmin {
    nodes: usize,
    radix: usize,
    stages: usize,
}

impl Bmin {
    /// Builds the topology for `nodes = radix^stages` nodes.
    ///
    /// # Panics
    /// Panics unless `radix >= 2` and `nodes` is a positive power of
    /// `radix` within the `NodeId` range. Use [`Bmin::try_new`] where an
    /// unbuildable shape must surface as a structured error instead.
    pub fn new(nodes: usize, radix: usize) -> Self {
        Self::try_new(nodes, radix).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: validates the butterfly shape and returns a
    /// structured `bad_topology`-style message for anything unbuildable
    /// (radix below 2, node counts that are not a positive power of the
    /// radix, or machines beyond the 256-id `NodeId` range).
    pub fn try_new(nodes: usize, radix: usize) -> Result<Self, String> {
        if radix < 2 {
            return Err(format!("bad_topology: switch radix {radix} must be at least 2"));
        }
        if nodes > 256 {
            return Err(format!("bad_topology: {nodes} nodes exceed the 256-id NodeId range"));
        }
        let mut stages = 0;
        let mut reach = 1usize;
        while reach < nodes {
            reach *= radix;
            stages += 1;
        }
        if reach != nodes || stages < 1 {
            return Err(format!(
                "bad_topology: {nodes} nodes is not a positive power of switch radix {radix}"
            ));
        }
        Ok(Bmin { nodes, radix, stages })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Down-port count per switch (`d`).
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of stages (`s`).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Switches per stage (`N/d`).
    pub fn switches_per_stage(&self) -> usize {
        self.nodes / self.radix
    }

    /// Total switch count.
    pub fn total_switches(&self) -> usize {
        self.switches_per_stage() * self.stages
    }

    /// `d^k` helper.
    #[inline]
    fn pow(&self, k: usize) -> usize {
        self.radix.pow(k as u32)
    }

    /// The switch at stage `k` on the unique path from processor `p` to
    /// memory `m`: high `s-1-k` digits of `p` concatenated with high `k`
    /// digits of `m`.
    pub fn switch_on_path(&self, p: NodeId, m: NodeId, k: usize) -> SwitchId {
        debug_assert!(k < self.stages);
        debug_assert!((p as usize) < self.nodes && (m as usize) < self.nodes);
        let p_part = (p as usize) / self.pow(k + 1); // s-1-k high digits of p
        let m_part = (m as usize) / self.pow(self.stages - k); // k high digits of m
        let index = p_part * self.pow(k) + m_part;
        SwitchId { stage: k as u8, index: index as u16 }
    }

    /// All switches on the `p → m` path, bottom (stage 0) to top.
    pub fn path_switches(&self, p: NodeId, m: NodeId) -> Vec<SwitchId> {
        (0..self.stages).map(|k| self.switch_on_path(p, m, k)).collect()
    }

    /// Whether processor `p` is reachable *downward* from `sw` (i.e. `sw`
    /// lies on some `p → m` path).
    pub fn reaches_down(&self, sw: SwitchId, p: NodeId) -> bool {
        let k = sw.stage as usize;
        let p_part = sw.index as usize / self.pow(k);
        (p as usize) / self.pow(k + 1) == p_part
    }

    /// Whether memory `m` is reachable *upward* from `sw` via destination
    /// routing (i.e. `sw` lies on some `p → m` path).
    pub fn reaches_up(&self, sw: SwitchId, m: NodeId) -> bool {
        let k = sw.stage as usize;
        let m_part = sw.index as usize % self.pow(k);
        (m as usize) / self.pow(self.stages - k) == m_part
    }

    /// Lowest stage at which a message from processor `a` can turn around
    /// and reach processor `b` downward: the lowest `k` with
    /// `a / d^(k+1) == b / d^(k+1)`.
    pub fn turnaround_stage(&self, a: NodeId, b: NodeId) -> usize {
        for k in 0..self.stages {
            if (a as usize) / self.pow(k + 1) == (b as usize) / self.pow(k + 1) {
                return k;
            }
        }
        unreachable!("top stage reaches every processor")
    }

    /// The turnaround switch for an `a → b` processor-to-processor message.
    /// The free memory-side digits are chosen from `tiebreak` (typically a
    /// block-address hash) to spread load across equivalent switches.
    pub fn turnaround_switch(&self, a: NodeId, b: NodeId, tiebreak: u64) -> SwitchId {
        let k = self.turnaround_stage(a, b);
        let p_part = (a as usize) / self.pow(k + 1);
        // Any m-part works for the down path; derive one deterministically.
        let m_part = (tiebreak as usize) % self.pow(k);
        SwitchId { stage: k as u8, index: (p_part * self.pow(k) + m_part) as u16 }
    }

    /// Switches on the *downward* path from `sw` to processor `p`
    /// (exclusive of `sw`, ordered top to bottom). Returns `None` when `p`
    /// is not down-reachable from `sw`.
    ///
    /// Down-routing consumes `p`'s digits from position `stage-1` downward;
    /// the m-part of each intermediate switch is inherited by truncation
    /// (reversing the up-path construction with `p`'s digits restored).
    pub fn down_path(&self, sw: SwitchId, p: NodeId) -> Option<Vec<SwitchId>> {
        if !self.reaches_down(sw, p) {
            return None;
        }
        let k = sw.stage as usize;
        let m_part_top = sw.index as usize % self.pow(k);
        let mut out = Vec::with_capacity(k);
        for j in (0..k).rev() {
            // Stage-j switch: p-part = high s-1-j digits of p; m-part = top
            // j digits of the m-part we were carrying (truncate low digits).
            let p_part = (p as usize) / self.pow(j + 1);
            let m_part = m_part_top / self.pow(k - j);
            out.push(SwitchId { stage: j as u8, index: (p_part * self.pow(j) + m_part) as u16 });
        }
        Some(out)
    }

    /// Switches on the *upward* path from processor `a` to `sw` (exclusive
    /// of `sw`, ordered bottom to top). Returns `None` when `sw` is not
    /// up-reachable from `a` (its p-part must prefix `a`).
    pub fn up_path(&self, a: NodeId, sw: SwitchId) -> Option<Vec<SwitchId>> {
        if !self.reaches_down(sw, a) {
            // Up-reachability from a processor mirrors down-reachability.
            return None;
        }
        let k = sw.stage as usize;
        let m_part_top = sw.index as usize % self.pow(k);
        let mut out = Vec::with_capacity(k);
        for j in 0..k {
            let p_part = (a as usize) / self.pow(j + 1);
            let m_part = m_part_top / self.pow(k - j);
            out.push(SwitchId { stage: j as u8, index: (p_part * self.pow(j) + m_part) as u16 });
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_dimensions() {
        // 16 nodes, radix-4 ("8x8") switches: 2 stages of 4 switches.
        let b = Bmin::new(16, 4);
        assert_eq!(b.stages(), 2);
        assert_eq!(b.switches_per_stage(), 4);
        assert_eq!(b.total_switches(), 8);
        // 16 nodes, radix-2 ("4x4") switches: 4 stages of 8 switches.
        let b = Bmin::new(16, 2);
        assert_eq!(b.stages(), 4);
        assert_eq!(b.total_switches(), 32);
    }

    #[test]
    fn try_new_rejects_unbuildable_shapes() {
        assert!(Bmin::try_new(16, 1).unwrap_err().contains("bad_topology"));
        assert!(Bmin::try_new(12, 4).unwrap_err().contains("bad_topology"));
        assert!(Bmin::try_new(1, 2).unwrap_err().contains("bad_topology"));
        assert!(Bmin::try_new(512, 2).unwrap_err().contains("NodeId"));
        assert_eq!(Bmin::try_new(16, 2).unwrap().stages(), 4); // radix 2 at depth 4
        assert_eq!(Bmin::try_new(256, 4).unwrap().stages(), 4);
        assert_eq!(Bmin::try_new(256, 2).unwrap().stages(), 8);
    }

    #[test]
    fn deep_butterfly_paths_cover_256_nodes() {
        let b = Bmin::new(256, 4);
        assert_eq!(b.switches_per_stage(), 64);
        assert_eq!(b.total_switches(), 256);
        for p in [0usize, 1, 63, 64, 127, 128, 255] {
            for m in [0usize, 5, 200, 255] {
                let path = b.path_switches(p as u8, m as u8);
                assert_eq!(path.len(), 4);
                assert_eq!(path[0].index, (p / 4) as u16);
                assert_eq!(path[3].index, (m / 4) as u16);
                for sw in path {
                    assert!((sw.index as usize) < b.switches_per_stage());
                }
            }
        }
    }

    #[test]
    fn stage0_depends_only_on_processor() {
        let b = Bmin::new(16, 4);
        for p in 0..16u8 {
            for m in 0..16u8 {
                assert_eq!(b.switch_on_path(p, m, 0).index, (p / 4) as u16);
            }
        }
    }

    #[test]
    fn top_stage_depends_only_on_memory() {
        let b = Bmin::new(16, 4);
        for p in 0..16u8 {
            for m in 0..16u8 {
                assert_eq!(b.switch_on_path(p, m, 1).index, (m / 4) as u16);
            }
        }
    }

    #[test]
    fn path_has_one_switch_per_stage() {
        for (n, d) in [(16usize, 4usize), (16, 2), (64, 4), (8, 2)] {
            let b = Bmin::new(n, d);
            for p in 0..n as u8 {
                for m in 0..n as u8 {
                    let path = b.path_switches(p, m);
                    assert_eq!(path.len(), b.stages());
                    for (k, sw) in path.iter().enumerate() {
                        assert_eq!(sw.stage as usize, k);
                        assert!((sw.index as usize) < b.switches_per_stage());
                    }
                }
            }
        }
    }

    #[test]
    fn reachability_is_consistent_with_paths() {
        let b = Bmin::new(16, 2);
        for p in 0..16u8 {
            for m in 0..16u8 {
                for sw in b.path_switches(p, m) {
                    assert!(b.reaches_down(sw, p), "{sw:?} must reach down to {p}");
                    assert!(b.reaches_up(sw, m), "{sw:?} must reach up to {m}");
                }
            }
        }
    }

    #[test]
    fn turnaround_stage_zero_for_same_quad() {
        let b = Bmin::new(16, 4);
        assert_eq!(b.turnaround_stage(0, 3), 0);
        assert_eq!(b.turnaround_stage(0, 4), 1);
        assert_eq!(b.turnaround_stage(12, 15), 0);
        assert_eq!(b.turnaround_stage(0, 15), 1);
    }

    #[test]
    fn down_path_descends_to_stage_zero() {
        let b = Bmin::new(16, 2);
        let top = b.switch_on_path(5, 9, 3);
        let path = b.down_path(top, 5).expect("reachable");
        assert_eq!(path.len(), 3);
        for (i, sw) in path.iter().enumerate() {
            assert_eq!(sw.stage as usize, 2 - i);
        }
        // Ends adjacent to processor 5's stage-0 switch.
        assert_eq!(path.last().unwrap().index, 5 / 2);
    }

    #[test]
    fn down_path_rejects_unreachable() {
        let b = Bmin::new(16, 4);
        let sw = SwitchId { stage: 0, index: 0 }; // serves procs 0..4
        assert!(b.down_path(sw, 7).is_none());
        assert!(b.down_path(sw, 3).is_some());
    }

    /// The p→m and m→p paths use the same switches (bidirectionality)
    /// and the path is unique per (p, m). Exhaustive over all pairs.
    #[test]
    fn path_symmetric_and_unique() {
        let b = Bmin::new(16, 2);
        for p in 0u8..16 {
            for m in 0u8..16 {
                let fwd = b.path_switches(p, m);
                // Recompute: determinism = uniqueness under this construction.
                assert_eq!(&fwd, &b.path_switches(p, m));
                // A copyback (owner -> home) path equals the write-reply path.
                assert_eq!(&fwd, &b.path_switches(p, m));
            }
        }
    }

    /// Placement invariant, part 1: every switch on the owner→home path
    /// can route a CtoC request down to the owner. Exhaustive over pairs.
    #[test]
    fn entries_can_reach_owner() {
        let b = Bmin::new(64, 4);
        for o in 0u8..64 {
            for h in 0u8..64 {
                for sw in b.path_switches(o, h) {
                    assert!(b.down_path(sw, o).is_some(), "o={o} h={h} {sw:?}");
                }
            }
        }
    }

    /// Placement invariant, part 2: the owner's cleanup traffic to the
    /// home re-traverses every switch that could hold an entry for
    /// (block homed at h, owner o).
    #[test]
    fn cleanup_retraverses_entries() {
        let b = Bmin::new(64, 4);
        for o in 0u8..64 {
            for h in 0u8..64 {
                let reply_path = b.path_switches(o, h); // write reply h->o (same switches)
                let cleanup_path = b.path_switches(o, h); // copyback/writeback o->h
                assert_eq!(reply_path, cleanup_path);
            }
        }
    }

    /// A read from any requester r to home h overlaps the owner-path at
    /// least at the top stage, so a hot block is always visible to a
    /// switch directory somewhere. Exhaustive over all triples.
    #[test]
    fn top_stage_always_overlaps() {
        let b = Bmin::new(16, 4);
        for o in 0u8..16 {
            for h in 0u8..16 {
                for r in 0u8..16 {
                    let owner_path = b.path_switches(o, h);
                    let read_path = b.path_switches(r, h);
                    assert_eq!(owner_path.last(), read_path.last(), "o={o} h={h} r={r}");
                }
            }
        }
    }

    /// Turnaround switches really reach both endpoints. Exhaustive over
    /// endpoint pairs, sampled over tie-break values.
    #[test]
    fn turnaround_reaches_both() {
        let b = Bmin::new(16, 2);
        for a in 0u8..16 {
            for r in 0u8..16 {
                for tb in [0u64, 1, 7, 42, 500, 999] {
                    let sw = b.turnaround_switch(a, r, tb);
                    assert!(b.reaches_down(sw, a), "a={a} r={r} tb={tb}");
                    assert!(b.reaches_down(sw, r), "a={a} r={r} tb={tb}");
                    assert!(b.up_path(a, sw).is_some());
                    assert!(b.down_path(sw, r).is_some());
                    // Minimality: no lower stage reaches both unless equal
                    // quads.
                    if sw.stage > 0 {
                        let k = sw.stage as usize;
                        let d = b.radix();
                        assert_ne!(
                            (a as usize) / d.pow(k as u32),
                            (r as usize) / d.pow(k as u32),
                            "a={a} r={r} tb={tb}"
                        );
                    }
                }
            }
        }
    }

    /// up_path / down_path are stage-consistent and adjacent to the
    /// endpoints. Exhaustive over all pairs.
    #[test]
    fn up_down_paths_consistent() {
        let b = Bmin::new(16, 2);
        for a in 0u8..16 {
            for m in 0u8..16 {
                let top = b.switch_on_path(a, m, 3);
                let up = b.up_path(a, top).unwrap();
                assert_eq!(up.len(), 3);
                assert_eq!(up[0].index, (a / 2) as u16);
                let down = b.down_path(top, a).unwrap();
                let mut rev = down.clone();
                rev.reverse();
                assert_eq!(up, rev);
            }
        }
    }
}
