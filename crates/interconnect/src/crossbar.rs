//! Cycle-accurate crossbar switch model (paper §4.1, Figure 5).
//!
//! The switch has input blocks with per-virtual-channel FIFO buffers,
//! age-based arbitration ("at each arbitration cycle, a maximum of 4
//! highest age flits are selected from 8 possible candidates", after the
//! SGI SPIDER), wormhole output locking (a head flit reserves its output
//! until the tail passes) and a fixed core traversal delay.
//!
//! The model is deliberately free-standing: `dresar-bench` uses it for the
//! DRESAR cycle-budget microbenchmarks, and [`crate::flit_net`] composes it
//! into whole networks to cross-check the hop-level model.

use dresar_types::Cycle;
use std::collections::VecDeque;

/// One flit of a wormhole message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Message the flit belongs to.
    pub msg: u64,
    /// First flit of the message (carries the header).
    pub head: bool,
    /// Last flit of the message (releases the output lock).
    pub tail: bool,
    /// Injection cycle of the message — the "age" used for arbitration
    /// priority (older wins).
    pub age: Cycle,
    /// Output port this flit requests at the current switch.
    pub out_port: u8,
}

#[derive(Debug, Clone, Default)]
struct Vc {
    fifo: VecDeque<Flit>,
}

#[derive(Debug, Clone)]
struct InputBlock {
    vcs: Vec<Vc>,
}

#[derive(Debug, Clone, Copy, Default)]
struct OutputLock {
    holder: Option<(u16, u16)>, // (input, vc)
}

/// Arbitration outcome counters kept by every [`Crossbar`].
///
/// `conflicts` counts candidates that lost an arbitration cycle to an older
/// flit (the SPIDER age-based preemption); `lock_blocked` counts candidates
/// turned away by a wormhole output lock; `offers_refused` counts flits an
/// upstream sender had to hold because the VC FIFO was full (credit
/// backpressure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Flits granted passage through the switch core.
    pub grants: u64,
    /// Candidates skipped because their input or output was already granted
    /// this cycle to an older flit.
    pub conflicts: u64,
    /// Candidates ineligible because of a wormhole output lock (a head flit
    /// facing a locked output, or a body flit whose lock is not yet placed).
    pub lock_blocked: u64,
    /// Flits refused at [`Crossbar::offer`] because the VC FIFO was full.
    pub offers_refused: u64,
}

impl ArbiterStats {
    /// Accumulates `other` into `self` (for summing across switches).
    pub fn merge(&mut self, other: &ArbiterStats) {
        self.grants += other.grants;
        self.conflicts += other.conflicts;
        self.lock_blocked += other.lock_blocked;
        self.offers_refused += other.offers_refused;
    }
}

/// A flit leaving the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exit {
    /// Output port the flit leaves on.
    pub out_port: u8,
    /// Cycle the flit is available at the output transmitter (grant cycle
    /// plus the core delay).
    pub at: Cycle,
    /// The flit itself.
    pub flit: Flit,
}

/// The crossbar switch.
#[derive(Debug, Clone)]
pub struct Crossbar {
    inputs: Vec<InputBlock>,
    locks: Vec<OutputLock>,
    buffer_flits: usize,
    core_cycles: Cycle,
    stats: ArbiterStats,
    /// Arbitration candidate scratch, reused across [`Crossbar::step`]
    /// calls so the per-cycle inner loop allocates nothing.
    cands: Vec<(Cycle, u16, u16, Flit)>,
}

impl Crossbar {
    /// Creates a switch with `n_in` input links x `vcs` virtual channels,
    /// `n_out` outputs, per-VC FIFO capacity `buffer_flits`, and a core
    /// delay of `core_cycles`.
    pub fn new(
        n_in: usize,
        n_out: usize,
        vcs: usize,
        buffer_flits: usize,
        core_cycles: u32,
    ) -> Self {
        assert!(n_in > 0 && n_out > 0 && vcs > 0 && buffer_flits > 0);
        // The grant trackers below are u64 bitmasks (one bit per port).
        assert!(n_in <= 64 && n_out <= 64, "crossbar ports limited to 64");
        Crossbar {
            inputs: vec![InputBlock { vcs: vec![Vc::default(); vcs] }; n_in],
            locks: vec![OutputLock::default(); n_out],
            buffer_flits,
            core_cycles: core_cycles as Cycle,
            stats: ArbiterStats::default(),
            cands: Vec::new(),
        }
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.locks.len()
    }

    /// Free FIFO slots on `(input, vc)` — the credit count an upstream
    /// sender checks before transmitting.
    pub fn free_space(&self, input: usize, vc: usize) -> usize {
        self.buffer_flits - self.inputs[input].vcs[vc].fifo.len()
    }

    /// Offers a flit to an input VC. Returns `false` (flit not accepted)
    /// when the FIFO is full.
    pub fn offer(&mut self, input: usize, vc: usize, flit: Flit) -> bool {
        let fifo = &mut self.inputs[input].vcs[vc].fifo;
        if fifo.len() >= self.buffer_flits {
            self.stats.offers_refused += 1;
            return false;
        }
        fifo.push_back(flit);
        true
    }

    /// Whether any flit is buffered.
    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(|i| i.vcs.iter().all(|v| v.fifo.is_empty()))
    }

    /// Total flits granted so far.
    pub fn flits_granted(&self) -> u64 {
        self.stats.grants
    }

    /// Arbitration outcome counters.
    pub fn stats(&self) -> &ArbiterStats {
        &self.stats
    }

    /// Runs one arbitration cycle at time `now`; returns the flits that
    /// leave the switch (at `now + core_cycles`).
    ///
    /// Rules, per the paper's SPIDER-style arbiter:
    /// * candidates are the head-of-FIFO flits of every (input, VC);
    /// * a *head* flit is eligible only for an unlocked output; a body
    ///   flit only for the output its message already locked;
    /// * at most one flit per input and one per output is granted per
    ///   cycle, oldest age first (ties broken by input then VC index — a
    ///   fixed priority that keeps the model deterministic);
    /// * a granted head flit locks its output; a granted tail releases it.
    pub fn step(&mut self, now: Cycle) -> Vec<Exit> {
        let mut exits = Vec::new();
        self.step_into(now, &mut exits);
        exits
    }

    /// [`Crossbar::step`] appending into a caller-owned buffer, so a
    /// network stepping many switches every cycle reuses one allocation.
    /// The buffer is *not* cleared: exits append after existing contents.
    pub fn step_into(&mut self, now: Cycle, exits: &mut Vec<Exit>) {
        // Gather candidates (age, input, vc, flit) into the reusable
        // scratch; fast-out when the switch is idle.
        self.cands.clear();
        for (i, ib) in self.inputs.iter().enumerate() {
            for (v, vc) in ib.vcs.iter().enumerate() {
                if let Some(&f) = vc.fifo.front() {
                    self.cands.push((f.age, i as u16, v as u16, f));
                }
            }
        }
        if self.cands.is_empty() {
            return;
        }
        self.cands.sort_unstable_by_key(|&(age, i, v, _)| (age, i, v));

        // One grant per input and per output, tracked branch-free in
        // per-port bitmasks (ports are bounded to 64 at construction).
        let mut out_used = 0u64;
        let mut in_used = 0u64;

        for c in 0..self.cands.len() {
            let (_, i, v, f) = self.cands[c];
            let o = f.out_port as usize;
            debug_assert!(o < self.locks.len(), "flit requests nonexistent output");
            if (in_used >> i) & 1 != 0 || (out_used >> o) & 1 != 0 {
                self.stats.conflicts += 1;
                continue;
            }
            let eligible = match self.locks[o].holder {
                None => f.head,
                Some(h) => h == (i, v) && !f.head,
            };
            if !eligible {
                self.stats.lock_blocked += 1;
                continue;
            }
            // Grant.
            in_used |= 1 << i;
            out_used |= 1 << o;
            let flit = self.inputs[i as usize].vcs[v as usize].fifo.pop_front().expect("candidate");
            if flit.head && !flit.tail {
                self.locks[o].holder = Some((i, v));
            }
            if flit.tail {
                self.locks[o].holder = None;
            }
            self.stats.grants += 1;
            exits.push(Exit { out_port: f.out_port, at: now + self.core_cycles, flit });
        }
    }
}

/// Splits a message into `n` flits for injection.
pub fn flits_of_message(msg: u64, n: u32, age: Cycle, out_port: u8) -> Vec<Flit> {
    assert!(n >= 1);
    (0..n).map(|i| Flit { msg, head: i == 0, tail: i == n - 1, age, out_port }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_switch() -> Crossbar {
        // 8x8 bidirectional: 8 link inputs x 2 VCs, 8 outputs, 4-flit
        // buffers, 4-cycle core.
        Crossbar::new(8, 8, 2, 4, 4)
    }

    #[test]
    fn single_flit_passes_with_core_delay() {
        let mut x = paper_switch();
        let f = Flit { msg: 1, head: true, tail: true, age: 0, out_port: 3 };
        assert!(x.offer(0, 0, f));
        let exits = x.step(10);
        assert_eq!(exits, vec![Exit { out_port: 3, at: 14, flit: f }]);
        assert!(x.is_idle());
    }

    #[test]
    fn buffer_capacity_enforced() {
        let mut x = paper_switch();
        let f = Flit { msg: 1, head: true, tail: false, age: 0, out_port: 0 };
        for _ in 0..4 {
            assert!(x.offer(0, 0, f));
        }
        assert!(!x.offer(0, 0, f), "fifth flit must be refused");
        assert_eq!(x.free_space(0, 0), 0);
        assert_eq!(x.free_space(0, 1), 4);
    }

    #[test]
    fn age_priority_wins_output_conflict() {
        let mut x = paper_switch();
        let young = Flit { msg: 1, head: true, tail: true, age: 9, out_port: 0 };
        let old = Flit { msg: 2, head: true, tail: true, age: 3, out_port: 0 };
        x.offer(0, 0, young);
        x.offer(1, 0, old);
        let exits = x.step(10);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].flit.msg, 2, "older flit granted first");
        let exits = x.step(11);
        assert_eq!(exits[0].flit.msg, 1);
    }

    #[test]
    fn wormhole_locks_output_until_tail() {
        let mut x = paper_switch();
        // 3-flit message from input 0 to output 5.
        for f in flits_of_message(7, 3, 0, 5) {
            x.offer(0, 0, f);
        }
        // Competing head from input 1 (younger).
        x.offer(1, 0, Flit { msg: 8, head: true, tail: true, age: 1, out_port: 5 });
        let e = x.step(0);
        assert_eq!(e.len(), 1);
        assert!(e[0].flit.head && e[0].flit.msg == 7);
        // Body flits keep the output; msg 8 stays blocked.
        let e = x.step(1);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].flit.msg, 7);
        let e = x.step(2);
        assert_eq!(e[0].flit.msg, 7);
        assert!(e[0].flit.tail);
        // Tail released the lock: msg 8 goes now.
        let e = x.step(3);
        assert_eq!(e[0].flit.msg, 8);
    }

    #[test]
    fn distinct_outputs_move_in_parallel() {
        let mut x = paper_switch();
        for (i, o) in [(0usize, 0u8), (1, 1), (2, 2), (3, 3)] {
            x.offer(i, 0, Flit { msg: i as u64, head: true, tail: true, age: 0, out_port: o });
        }
        let e = x.step(0);
        assert_eq!(e.len(), 4, "four flits granted in one cycle");
    }

    #[test]
    fn one_flit_per_input_per_cycle() {
        let mut x = paper_switch();
        // Two single-flit messages on different VCs of the same input,
        // different outputs: input bandwidth limits to one grant.
        x.offer(0, 0, Flit { msg: 1, head: true, tail: true, age: 0, out_port: 0 });
        x.offer(0, 1, Flit { msg: 2, head: true, tail: true, age: 0, out_port: 1 });
        assert_eq!(x.step(0).len(), 1);
        assert_eq!(x.step(1).len(), 1);
    }

    #[test]
    fn blocked_message_does_not_block_other_vc() {
        let mut x = paper_switch();
        // msg 1 (older) grabs output 0 and stalls mid-message (only its
        // head offered so far).
        x.offer(0, 0, Flit { msg: 1, head: true, tail: false, age: 0, out_port: 0 });
        x.step(0);
        // msg 2 on the other VC of the same input heads elsewhere: passes.
        x.offer(0, 1, Flit { msg: 2, head: true, tail: true, age: 5, out_port: 3 });
        let e = x.step(1);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].flit.msg, 2);
    }

    #[test]
    fn arbiter_stats_count_outcomes() {
        let mut x = paper_switch();
        // Age conflict: two heads for the same output, same cycle.
        x.offer(0, 0, Flit { msg: 1, head: true, tail: true, age: 0, out_port: 0 });
        x.offer(1, 0, Flit { msg: 2, head: true, tail: true, age: 5, out_port: 0 });
        x.step(0);
        assert_eq!(x.stats().grants, 1);
        assert_eq!(x.stats().conflicts, 1, "younger flit lost the arbitration");
        // Wormhole lock block: a stalled multi-flit message holds output 3.
        x.step(1); // drain msg 2
        x.offer(2, 0, Flit { msg: 3, head: true, tail: false, age: 0, out_port: 3 });
        x.step(2);
        x.offer(3, 0, Flit { msg: 4, head: true, tail: true, age: 9, out_port: 3 });
        x.step(3);
        assert_eq!(x.stats().lock_blocked, 1, "head blocked by foreign lock");
        // FIFO-full refusal.
        let f = Flit { msg: 5, head: true, tail: false, age: 0, out_port: 1 };
        for _ in 0..4 {
            assert!(x.offer(4, 0, f));
        }
        assert!(!x.offer(4, 0, f));
        assert_eq!(x.stats().offers_refused, 1);
        // Merge sums fields.
        let mut total = ArbiterStats::default();
        total.merge(x.stats());
        total.merge(x.stats());
        assert_eq!(total.grants, 2 * x.stats().grants);
    }

    #[test]
    fn flits_of_message_marks_head_and_tail() {
        let fs = flits_of_message(9, 5, 2, 1);
        assert_eq!(fs.len(), 5);
        assert!(fs[0].head && !fs[0].tail);
        assert!(fs[4].tail && !fs[4].head);
        assert!(fs[1..4].iter().all(|f| !f.head && !f.tail));
        let single = flits_of_message(9, 1, 2, 1);
        assert!(single[0].head && single[0].tail);
    }
}
