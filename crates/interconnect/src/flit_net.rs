//! A cycle-stepped network of [`crate::crossbar`] switches over the
//! [`crate::topology::Bmin`] wiring.
//!
//! This is the validation fidelity: whole messages are decomposed into
//! flits, links transmit one flit per `link_cycles_per_flit` cycles with
//! credit-based backpressure against the downstream input FIFO, and every
//! switch runs the age-based wormhole arbiter. It is used to cross-check
//! the hop-level model's latencies and by the crossbar benchmarks — the
//! full-system protocol simulators use the hop model for speed.
//!
//! Port convention per switch (radix `d`): inputs/outputs `0..d` face the
//! processors (down side), `d..2d` face the memories (up side).

use crate::crossbar::{flits_of_message, ArbiterStats, Crossbar, Exit};
use crate::link_index::LinkIndexer;
use crate::routes::{LinkId, Route};
use crate::topology::{Bmin, SwitchId};
use dresar_faults::SimError;
use dresar_types::config::SwitchConfig;
use dresar_types::{Cycle, FastMap};
use std::collections::VecDeque;

/// A completed message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Message id.
    pub msg: u64,
    /// Cycle the tail flit reached the endpoint.
    pub at: Cycle,
    /// The endpoint link it arrived on (`ProcDown` or `MemUp`).
    pub endpoint: LinkId,
}

/// Where a link feeds into.
#[derive(Debug, Clone, Copy)]
enum LinkSink {
    Switch { idx: usize, input: usize },
    Endpoint,
}

/// A physical link: flits wait until their availability time (switch core
/// delay), transmit one per `link_cycles_per_flit` cycles, and arrive at the
/// far side one flit-time after transmission starts.
#[derive(Debug, Default)]
struct LinkPipe {
    /// Flits waiting to transmit, with the cycle they become available.
    waiting: VecDeque<(Cycle, crate::crossbar::Flit)>,
    /// Flits in flight, with their arrival cycle.
    arriving: VecDeque<(Cycle, crate::crossbar::Flit)>,
    next_send: Cycle,
}

/// Per-message routing state: output port at each switch on the path, as
/// `(linear switch index, out port)` pairs in path order. Routes are at
/// most a handful of hops, so a linear scan beats any map.
#[derive(Debug)]
struct MsgRoute {
    out_ports: Vec<(u16, u8)>,
}

impl MsgRoute {
    #[inline]
    fn out_port_at(&self, switch_idx: usize) -> Option<u8> {
        self.out_ports.iter().find(|&&(s, _)| s as usize == switch_idx).map(|&(_, p)| p)
    }
}

/// The flit-level network.
#[derive(Debug)]
pub struct FlitNetwork {
    bmin: Bmin,
    cfg: SwitchConfig,
    switches: Vec<Crossbar>,
    /// Link pipes in a dense table (see [`LinkIndexer`]); `step` walks
    /// `active` — the links touched so far, in deterministic first-touch
    /// order — instead of collecting map keys every cycle.
    indexer: LinkIndexer,
    pipes: Vec<LinkPipe>,
    active: Vec<u32>,
    is_active: Vec<bool>,
    routes: FastMap<u64, MsgRoute>,
    now: Cycle,
    delivered: Vec<Delivery>,
    /// Scratch for per-switch arbitration exits, reused every cycle.
    exits_scratch: Vec<Exit>,
}

impl FlitNetwork {
    /// Builds the network.
    pub fn new(bmin: Bmin, cfg: SwitchConfig) -> Self {
        let d = bmin.radix();
        let n_ports = 2 * d;
        let switches = (0..bmin.total_switches())
            .map(|_| {
                Crossbar::new(
                    n_ports,
                    n_ports,
                    cfg.virtual_channels as usize,
                    cfg.buffer_flits as usize,
                    cfg.core_cycles,
                )
            })
            .collect();
        let indexer = LinkIndexer::new(&bmin);
        FlitNetwork {
            bmin,
            cfg,
            switches,
            indexer,
            pipes: (0..indexer.len()).map(|_| LinkPipe::default()).collect(),
            active: Vec::new(),
            is_active: vec![false; indexer.len()],
            routes: FastMap::default(),
            now: 0,
            delivered: Vec::new(),
            exits_scratch: Vec::new(),
        }
    }

    /// Dense pipe slot for `link`, recording first touches in `active` so
    /// the step loop visits exactly the links ever used.
    #[inline]
    fn pipe_mut(&mut self, link: LinkId) -> &mut LinkPipe {
        let i = self.indexer.index(link);
        if !self.is_active[i] {
            self.is_active[i] = true;
            self.active.push(i as u32);
        }
        &mut self.pipes[i]
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    fn linear(&self, sw: SwitchId) -> usize {
        sw.stage as usize * self.bmin.switches_per_stage() + sw.index as usize
    }

    /// The switch (and its input port) a link feeds.
    fn sink_of(&self, link: LinkId) -> LinkSink {
        let d = self.bmin.radix();
        match link {
            LinkId::ProcUp(p) => LinkSink::Switch {
                idx: self.linear(SwitchId { stage: 0, index: (p as usize / d) as u16 }),
                input: p as usize % d,
            },
            LinkId::MemDown(m) => {
                let top = (self.bmin.stages() - 1) as u8;
                LinkSink::Switch {
                    idx: self.linear(SwitchId { stage: top, index: (m as usize / d) as u16 }),
                    input: d + m as usize % d,
                }
            }
            LinkId::Up { stage, lower, port } => {
                // Feeds the upper switch's down-side input; the input index
                // is the upper switch's down-port toward `lower`, which is
                // the last digit of the lower switch's p-part.
                let k = stage as usize;
                let p_part = lower as usize / d.pow(k as u32);
                let m_part = lower as usize % d.pow(k as u32);
                let upper_index = (p_part / d) * d.pow(k as u32 + 1) + (m_part * d + port as usize);
                LinkSink::Switch {
                    idx: self.linear(SwitchId { stage: stage + 1, index: upper_index as u16 }),
                    input: p_part % d,
                }
            }
            LinkId::Down { stage, lower, port } => LinkSink::Switch {
                idx: self.linear(SwitchId { stage, index: lower }),
                input: self.bmin.radix() + port as usize,
            },
            LinkId::ProcDown(_) | LinkId::MemUp(_) => LinkSink::Endpoint,
        }
    }

    /// Output port on `sw` that drives `link`, or `None` for injection
    /// links (which have no switch driver — a route asking for one is
    /// malformed and rejected by [`FlitNetwork::inject`]).
    fn out_port_for(&self, sw: SwitchId, link: LinkId) -> Option<u8> {
        let d = self.bmin.radix();
        match link {
            LinkId::MemUp(m) => Some((d + m as usize % d) as u8),
            LinkId::ProcDown(p) => Some((p as usize % d) as u8),
            LinkId::Up { port, .. } => {
                debug_assert!(self.sink_is_above(sw, link));
                Some((d + port as usize) as u8)
            }
            LinkId::Down { lower, .. } => {
                // Driven by the upper switch's down output toward `lower`:
                // port = last digit of the lower switch's p-part.
                let k = (sw.stage - 1) as usize;
                let p_part = lower as usize / d.pow(k as u32);
                Some((p_part % d) as u8)
            }
            LinkId::ProcUp(_) | LinkId::MemDown(_) => None,
        }
    }

    fn sink_is_above(&self, sw: SwitchId, link: LinkId) -> bool {
        matches!(link, LinkId::Up { stage, .. } if stage == sw.stage)
    }

    /// Injects a message: `flits` flits following `route`, entering the
    /// network on `route.links[0]` (which must be an injection link).
    ///
    /// A route that is not well-formed, or whose interior asks a switch to
    /// drive an injection link, is rejected without mutating the network.
    pub fn inject(&mut self, msg: u64, route: &Route, flits: u32) -> Result<(), SimError> {
        if !route.well_formed() {
            return Err(SimError::Network {
                context: "inject",
                detail: format!("malformed route for message {msg}"),
            });
        }
        let mut out_ports = Vec::with_capacity(route.switches.len());
        for (i, &sw) in route.switches.iter().enumerate() {
            let next_link = route.links[i + 1];
            let port = self.out_port_for(sw, next_link).ok_or_else(|| SimError::Network {
                context: "inject",
                detail: format!(
                    "route for message {msg} asks switch {sw:?} to drive injection link {next_link:?}"
                ),
            })?;
            out_ports.push((self.linear(sw) as u16, port));
        }
        let mroute = MsgRoute { out_ports };

        // First out-port: at the first switch (or directly the endpoint for
        // degenerate single-link routes — only possible for switch-origin
        // routes, which we inject at their first link too).
        let first_port =
            route.switches.first().and_then(|&sw| mroute.out_port_at(self.linear(sw))).unwrap_or(0);
        self.routes.insert(msg, mroute);
        let now = self.now;
        let pipe = self.pipe_mut(route.links[0]);
        for f in flits_of_message(msg, flits, now, first_port) {
            pipe.waiting.push_back((now, f));
        }
        Ok(())
    }

    /// Advances one cycle; returns deliveries completed this cycle.
    pub fn step(&mut self) -> Vec<Delivery> {
        let now = self.now;
        let lcpf = self.cfg.link_cycles_per_flit as Cycle;

        // 1a. Deliver flits whose transmission completed this cycle. The
        //     `active` list is the set of links ever touched, in first-
        //     touch order — no per-cycle key collection, no map iteration.
        let mut done = Vec::new();
        for a in 0..self.active.len() {
            let li = self.active[a] as usize;
            let link = self.indexer.link(li);
            let sink = self.sink_of(link);
            loop {
                let front = self.pipes[li].arriving.front().copied();
                let Some((at, f)) = front else { break };
                if at > now {
                    break;
                }
                match sink {
                    LinkSink::Endpoint => {
                        self.pipes[li].arriving.pop_front();
                        if f.tail {
                            done.push(Delivery { msg: f.msg, at, endpoint: link });
                        }
                    }
                    LinkSink::Switch { idx, input } => {
                        let vc = (f.msg % self.cfg.virtual_channels as u64) as usize;
                        // Retarget the flit's out-port for the switch it
                        // enters.
                        let mut f2 = f;
                        if let Some(r) = self.routes.get(&f.msg) {
                            if let Some(p) = r.out_port_at(idx) {
                                f2.out_port = p;
                            }
                        }
                        if self.switches[idx].offer(input, vc, f2) {
                            self.pipes[li].arriving.pop_front();
                        } else {
                            break; // FIFO full: back-pressure, retry next cycle.
                        }
                    }
                }
            }
        }

        // 1b. Start new transmissions: one flit per `lcpf` cycles, subject
        //     to downstream FIFO credit.
        for a in 0..self.active.len() {
            let li = self.active[a] as usize;
            let link = self.indexer.link(li);
            let sink = self.sink_of(link);
            let credit = match sink {
                LinkSink::Endpoint => true,
                LinkSink::Switch { idx, input } => {
                    // Conservative credit: require space for every VC this
                    // flit might enter (per-message VC is known below, but a
                    // cheap any-space check keeps the hot loop simple and the
                    // arrival path retries on the rare overfill).
                    (0..self.cfg.virtual_channels as usize)
                        .any(|v| self.switches[idx].free_space(input, v) > 0)
                }
            };
            let pipe = &mut self.pipes[li];
            if now < pipe.next_send || !credit {
                continue;
            }
            match pipe.waiting.front() {
                Some(&(avail, _)) if avail <= now => {}
                _ => continue,
            }
            let Some((_, f)) = pipe.waiting.pop_front() else { continue };
            pipe.next_send = now + lcpf;
            pipe.arriving.push_back((now + lcpf, f));
        }

        // 2. Switches arbitrate; exits enter their outgoing link pipes.
        //    The exits buffer is reused across switches and cycles.
        let mut exits = std::mem::take(&mut self.exits_scratch);
        for idx in 0..self.switches.len() {
            exits.clear();
            self.switches[idx].step_into(now, &mut exits);
            if exits.is_empty() {
                continue;
            }
            let sw = SwitchId {
                stage: (idx / self.bmin.switches_per_stage()) as u8,
                index: (idx % self.bmin.switches_per_stage()) as u16,
            };
            for &Exit { out_port, at, flit } in &exits {
                let link = self.link_of_output(sw, out_port);
                self.pipe_mut(link).waiting.push_back((at, flit));
            }
        }
        self.exits_scratch = exits;

        self.now += 1;
        self.delivered.extend(done.iter().copied());
        done
    }

    /// The link driven by `sw`'s output `port`, reconstructed from the
    /// wiring. Down-side outputs (`port < d`) drive `Down` or `ProcDown`
    /// links; up-side outputs drive `Up` or `MemUp`.
    fn link_of_output(&self, sw: SwitchId, port: u8) -> LinkId {
        let d = self.bmin.radix();
        let k = sw.stage as usize;
        let p_part = sw.index as usize / d.pow(k as u32);
        let m_part = sw.index as usize % d.pow(k as u32);
        if (port as usize) < d {
            // Down side.
            if k == 0 {
                LinkId::ProcDown((p_part * d + port as usize) as u8)
            } else {
                // Lower switch: p-part gains digit `port`, m-part drops its
                // last digit; the pair's canonical port is m_part's last
                // digit.
                let lower_p = p_part * d + port as usize;
                let lower_m = m_part / d;
                let lower = lower_p * d.pow(k as u32 - 1) + lower_m;
                LinkId::Down { stage: (k - 1) as u8, lower: lower as u16, port: (m_part % d) as u8 }
            }
        } else {
            let j = port as usize - d;
            if k == self.bmin.stages() - 1 {
                LinkId::MemUp((sw.index as usize * d + j) as u8)
            } else {
                LinkId::Up { stage: sw.stage, lower: sw.index, port: j as u8 }
            }
        }
    }

    /// Runs until every message has delivered or `max_cycles` elapse.
    /// Returns all deliveries so far.
    pub fn run_until_drained(&mut self, max_cycles: Cycle) -> Vec<Delivery> {
        let target = self.routes.len();
        while self.delivered.len() < target && self.now < max_cycles {
            self.step();
        }
        self.delivered.clone()
    }

    /// All deliveries so far.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.delivered
    }

    /// Arbitration counters summed over every switch in the network.
    pub fn arbiter_stats(&self) -> ArbiterStats {
        let mut total = ArbiterStats::default();
        for sw in &self.switches {
            total.merge(sw.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes;
    use dresar_types::config::SystemConfig;

    fn net() -> FlitNetwork {
        FlitNetwork::new(Bmin::new(16, 4), SystemConfig::paper_table2().switch)
    }

    #[test]
    fn single_request_crosses_network() {
        let mut n = net();
        let bmin = Bmin::new(16, 4);
        let r = routes::forward(&bmin, 3, 12);
        n.inject(1, &r, 1).unwrap();
        let d = n.run_until_drained(10_000);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].msg, 1);
        assert_eq!(d[0].endpoint, LinkId::MemUp(12));
        // Uncontended: 3 links x 4 + 2 cores x 4 = 20 cycles, +-1 stepping.
        assert!(d[0].at >= 20 && d[0].at <= 24, "latency {} out of range", d[0].at);
    }

    #[test]
    fn reply_crosses_backward() {
        let mut n = net();
        let bmin = Bmin::new(16, 4);
        let r = routes::backward(&bmin, 12, 3);
        n.inject(2, &r, 5).unwrap();
        let d = n.run_until_drained(10_000);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].endpoint, LinkId::ProcDown(3));
        // 5 flits: tail lag adds 4 x 4 = 16 over the 20-cycle head path.
        assert!(d[0].at >= 36 && d[0].at <= 44, "latency {} out of range", d[0].at);
    }

    #[test]
    fn proc_to_proc_turnaround_delivers() {
        let mut n = net();
        let bmin = Bmin::new(16, 4);
        let r = routes::proc_to_proc(&bmin, 1, 9, 0).unwrap();
        n.inject(3, &r, 5).unwrap();
        let d = n.run_until_drained(10_000);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].endpoint, LinkId::ProcDown(9));
    }

    #[test]
    fn many_messages_all_deliver() {
        let mut n = net();
        let bmin = Bmin::new(16, 4);
        let mut id = 0u64;
        for p in 0..16u8 {
            for m in 0..16u8 {
                n.inject(id, &routes::forward(&bmin, p, m), 1).unwrap();
                id += 1;
            }
        }
        let d = n.run_until_drained(100_000);
        assert_eq!(d.len(), 256, "every message must deliver (no deadlock)");
    }

    #[test]
    fn contention_slows_shared_destination() {
        let bmin = Bmin::new(16, 4);
        // 4 processors of one quad all target memory 12: they share the
        // ejection link.
        let mut n = net();
        for p in 0..4u8 {
            n.inject(p as u64, &routes::forward(&bmin, p, 12), 5).unwrap();
        }
        let d = n.run_until_drained(100_000);
        assert_eq!(d.len(), 4);
        let mut times: Vec<_> = d.iter().map(|x| x.at).collect();
        times.sort_unstable();
        // Tails must be separated by at least the 20-cycle serialization of
        // a 5-flit message on the shared final link.
        for w in times.windows(2) {
            assert!(
                w[1] >= w[0] + 20,
                "deliveries {} and {} overlap on the shared link",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn radix2_network_works_too() {
        let bmin = Bmin::new(16, 2);
        let mut n = FlitNetwork::new(bmin, SystemConfig::paper_table2().switch);
        for p in 0..16u8 {
            n.inject(p as u64, &routes::forward(&bmin, p, 15 - p), 1).unwrap();
        }
        let d = n.run_until_drained(100_000);
        assert_eq!(d.len(), 16);
    }
}
