//! Dense integer indexing of [`LinkId`]s for a fixed BMIN shape.
//!
//! The hop-level model books a [`dresar_engine::Resource`] per directed
//! link on *every* message hop, and the flit-level network walks its link
//! pipes every cycle. Keying those structures by `HashMap<LinkId, _>` puts
//! a hash + probe on the innermost simulation loops; a BMIN's link set is
//! small and fixed (`4n` endpoint links plus `2n` inter-stage links per
//! stage boundary), so each link maps to a dense index computed with two
//! multiplies and the containers become flat `Vec`s.
//!
//! Layout, for `n` nodes, radix `d`, `s` stages:
//!
//! | range                          | links                       |
//! |--------------------------------|-----------------------------|
//! | `0 .. n`                       | `ProcUp(p)`                 |
//! | `n .. 2n`                      | `ProcDown(p)`               |
//! | `2n .. 3n`                     | `MemUp(m)`                  |
//! | `3n .. 4n`                     | `MemDown(m)`                |
//! | `4n + stage*n + lower*d + port`        | `Up { stage, lower, port }`   |
//! | `4n + (s-1)*n + stage*n + lower*d + port` | `Down { stage, lower, port }` |
//!
//! Inter-stage links exist for `stage in 0..s-1`; `lower` ranges over the
//! `n/d` switches of that stage and `port` over `d`, so each directed
//! stage boundary contributes exactly `n` links.

use crate::routes::LinkId;
use crate::topology::Bmin;

/// Bijection between the [`LinkId`]s of one BMIN shape and `0..len()`.
#[derive(Debug, Clone, Copy)]
pub struct LinkIndexer {
    n: usize,
    d: usize,
    stages: usize,
}

impl LinkIndexer {
    /// Indexer for `bmin`'s link set.
    pub fn new(bmin: &Bmin) -> Self {
        LinkIndexer { n: bmin.nodes(), d: bmin.radix(), stages: bmin.stages() }
    }

    /// Indexer from raw shape parameters.
    ///
    /// # Panics
    /// Panics when the shape is not a buildable butterfly (the old
    /// behavior silently computed a wrong stage count and broke the
    /// bijection for non-power-of-radix node counts).
    pub fn from_shape(nodes: usize, radix: usize) -> Self {
        Self::try_from_shape(nodes, radix).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LinkIndexer::from_shape`]: rejects unbuildable shapes
    /// with the same structured `bad_topology` message as [`Bmin::try_new`].
    pub fn try_from_shape(nodes: usize, radix: usize) -> Result<Self, String> {
        Bmin::try_new(nodes, radix).map(|b| Self::new(&b))
    }

    /// Total number of distinct links (the exclusive index bound).
    pub fn len(&self) -> usize {
        4 * self.n + 2 * (self.stages - 1) * self.n
    }

    /// Whether the shape has no links (never true for a valid BMIN).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense index of `link`.
    #[inline]
    pub fn index(&self, link: LinkId) -> usize {
        let n = self.n;
        match link {
            LinkId::ProcUp(p) => p as usize,
            LinkId::ProcDown(p) => n + p as usize,
            LinkId::MemUp(m) => 2 * n + m as usize,
            LinkId::MemDown(m) => 3 * n + m as usize,
            LinkId::Up { stage, lower, port } => {
                4 * n + stage as usize * n + lower as usize * self.d + port as usize
            }
            LinkId::Down { stage, lower, port } => {
                4 * n
                    + (self.stages - 1) * n
                    + stage as usize * n
                    + lower as usize * self.d
                    + port as usize
            }
        }
    }

    /// Inverse of [`LinkIndexer::index`].
    pub fn link(&self, idx: usize) -> LinkId {
        let n = self.n;
        match idx / n {
            0 => LinkId::ProcUp(idx as u8),
            1 => LinkId::ProcDown((idx - n) as u8),
            2 => LinkId::MemUp((idx - 2 * n) as u8),
            3 => LinkId::MemDown((idx - 3 * n) as u8),
            _ => {
                let rel = idx - 4 * n;
                let up = rel < (self.stages - 1) * n;
                let rel = if up { rel } else { rel - (self.stages - 1) * n };
                let stage = (rel / n) as u8;
                let within = rel % n;
                let lower = (within / self.d) as u16;
                let port = (within % self.d) as u8;
                if up {
                    LinkId::Up { stage, lower, port }
                } else {
                    LinkId::Down { stage, lower, port }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_links(ix: &LinkIndexer, n: usize, d: usize, stages: usize) -> Vec<LinkId> {
        let mut v = Vec::with_capacity(ix.len());
        for p in 0..n {
            // Iterate in usize: `0..n as u8` is empty at the 256-node
            // boundary even though every id 0..=255 is representable.
            v.push(LinkId::ProcUp(p as u8));
            v.push(LinkId::ProcDown(p as u8));
            v.push(LinkId::MemUp(p as u8));
            v.push(LinkId::MemDown(p as u8));
        }
        for stage in 0..(stages - 1) as u8 {
            for lower in 0..(n / d) as u16 {
                for port in 0..d as u8 {
                    v.push(LinkId::Up { stage, lower, port });
                    v.push(LinkId::Down { stage, lower, port });
                }
            }
        }
        v
    }

    #[test]
    fn index_is_a_bijection() {
        for (n, d) in [(16usize, 4usize), (16, 2), (4, 2), (4, 4), (64, 4), (128, 2), (256, 4)] {
            let ix = LinkIndexer::from_shape(n, d);
            let links = all_links(&ix, n, d, ix.stages);
            assert_eq!(links.len(), ix.len(), "n={n} d={d}");
            let mut seen = vec![false; ix.len()];
            for l in links {
                let i = ix.index(l);
                assert!(i < ix.len(), "{l:?} out of range");
                assert!(!seen[i], "collision at {l:?}");
                seen[i] = true;
                assert_eq!(ix.link(i), l, "inverse mismatch at {i}");
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn matches_bmin_shape() {
        let bmin = Bmin::new(16, 4);
        let a = LinkIndexer::new(&bmin);
        let b = LinkIndexer::from_shape(16, 4);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.stages, 2);
        assert_eq!(a.len(), 4 * 16 + 2 * 16);
    }

    #[test]
    fn unbuildable_shapes_are_rejected_not_misindexed() {
        // The old from_shape silently computed stages for these and broke
        // the bijection; now they surface as structured errors.
        assert!(LinkIndexer::try_from_shape(12, 4).unwrap_err().contains("bad_topology"));
        assert!(LinkIndexer::try_from_shape(16, 1).unwrap_err().contains("bad_topology"));
        assert!(LinkIndexer::try_from_shape(512, 2).unwrap_err().contains("NodeId"));
        // Radix 2 at depth 4 and the deepest supported machines build.
        assert_eq!(LinkIndexer::try_from_shape(16, 2).unwrap().stages, 4);
        assert_eq!(LinkIndexer::try_from_shape(256, 2).unwrap().stages, 8);
    }
}
