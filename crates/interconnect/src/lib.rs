//! # dresar-interconnect
//!
//! The bidirectional multistage interconnection network (BMIN) of the
//! paper's Figure 3: processors attach below stage 0, memory/directory
//! modules above the top stage, and every switch is a wormhole-routed
//! crossbar with two virtual channels per input, four-flit input FIFOs and
//! age-based arbitration (after SGI SPIDER / Intel Cavallino).
//!
//! * [`topology`] — the d-ary baseline/delta network: unique minimal paths,
//!   switch identities, and the route calculations every simulator shares.
//!   The *switch-directory placement invariant* (entries are only installed
//!   on the home→owner write-reply path, which later cleanup traffic
//!   provably re-traverses) is a property of this topology and is
//!   property-tested here.
//! * [`routes`] — route objects (sequences of hops with link identities)
//!   for forward, backward, switch-originated and processor-to-processor
//!   (turnaround) traffic.
//! * [`hop_model`] — the fast per-hop latency/contention model used for
//!   full-application sweeps.
//! * [`crossbar`] — the cycle-accurate flit-level crossbar switch (input
//!   FIFOs, virtual channels, age-based arbitration, wormhole streaming),
//!   used for validation and the DRESAR cycle-budget microbenchmarks.
//! * [`flit_net`] — a cycle-stepped network of [`crossbar`] switches for
//!   small-scale cross-checks of the hop model.

#![warn(missing_docs)]

pub mod crossbar;
pub mod flit_net;
pub mod hop_model;
pub mod link_index;
pub mod routes;
pub mod topology;

pub use crossbar::{ArbiterStats, Crossbar, Flit};
pub use flit_net::{Delivery, FlitNetwork};
pub use hop_model::{link_key, HopNetwork};
pub use link_index::LinkIndexer;
pub use routes::{Hop, LinkId, Route, RouteTable};
pub use topology::{Bmin, SwitchId};
