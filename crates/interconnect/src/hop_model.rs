//! Hop-level network timing model.
//!
//! Used by the full-system simulator for application-scale runs: each link
//! is a serialized [`Resource`] booked for the message's full serialization
//! time (`flits x link_cycles_per_flit`), and each switch traversal adds the
//! crossbar core delay. Wormhole pipelining is modeled by advancing the
//! *header* one flit-time per link while the tail lags `(flits-1)` flit
//! times behind — the standard analytic wormhole latency, plus real queuing
//! delays from link contention.
//!
//! The flit-level model in [`crate::flit_net`] cross-checks this
//! approximation on small batches (see `tests/fidelity_crosscheck.rs`).

use crate::link_index::LinkIndexer;
use crate::routes::LinkId;
use dresar_engine::Resource;
use dresar_obs::{LinkKey, Probe};
use dresar_types::config::SwitchConfig;
use dresar_types::msg::MsgType;
use dresar_types::Cycle;

/// Packs a [`LinkId`] into the flat [`LinkKey`] the observability layer
/// uses: a variant tag in bits 32.. and the variant's fields below.
#[allow(clippy::identity_op)] // `0u64 << 32` keeps the variant tags visually parallel
pub fn link_key(link: LinkId) -> LinkKey {
    let k = match link {
        LinkId::ProcUp(n) => (0u64 << 32) | n as u64,
        LinkId::ProcDown(n) => (1u64 << 32) | n as u64,
        LinkId::MemUp(n) => (2u64 << 32) | n as u64,
        LinkId::MemDown(n) => (3u64 << 32) | n as u64,
        LinkId::Up { stage, lower, port } => {
            (4u64 << 32) | ((stage as u64) << 24) | ((lower as u64) << 8) | port as u64
        }
        LinkId::Down { stage, lower, port } => {
            (5u64 << 32) | ((stage as u64) << 24) | ((lower as u64) << 8) | port as u64
        }
    };
    LinkKey(k)
}

/// Per-link utilization sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkUtilization {
    /// The link.
    pub link: LinkId,
    /// Cycles the link spent transmitting.
    pub busy_cycles: Cycle,
}

/// The hop-level network state: one [`Resource`] per directed link, in a
/// flat table indexed by [`LinkIndexer`] — every message hop books a link,
/// so the lookup sits on the event loop's hottest path and must not hash.
#[derive(Debug)]
pub struct HopNetwork {
    cfg: SwitchConfig,
    index: LinkIndexer,
    links: Vec<Resource>,
    messages: u64,
    flits: u64,
}

impl HopNetwork {
    /// Creates an uncontended network with the given switch parameters for
    /// a BMIN of `nodes` endpoints (radix comes from `cfg`).
    pub fn new(cfg: SwitchConfig, nodes: usize) -> Self {
        let index = LinkIndexer::from_shape(nodes, cfg.radix as usize);
        HopNetwork { cfg, index, links: vec![Resource::new(); index.len()], messages: 0, flits: 0 }
    }

    /// Switch-core traversal delay in cycles.
    pub fn core_delay(&self) -> Cycle {
        self.cfg.core_cycles as Cycle
    }

    /// Cycles for one flit to cross a link.
    pub fn flit_time(&self) -> Cycle {
        self.cfg.link_cycles_per_flit as Cycle
    }

    /// Extra cycles after head arrival until the full message has arrived.
    pub fn tail_lag(&self, flits: u32) -> Cycle {
        (flits.saturating_sub(1) as Cycle) * self.flit_time()
    }

    /// Books `link` for a message of `flits` starting no earlier than
    /// `now`; returns the cycle the *head* flit arrives at the far side.
    /// The link stays busy for the full serialization time.
    pub fn traverse_link(&mut self, link: LinkId, now: Cycle, flits: u32) -> Cycle {
        let duration = flits as Cycle * self.flit_time();
        let start = self.links[self.index.index(link)].acquire(now, duration);
        self.messages += 1;
        self.flits += flits as u64;
        start + self.flit_time()
    }

    /// [`HopNetwork::traverse_link`] with observability: reports the booked
    /// busy interval (`start..start + serialization`), the message kind
    /// carried and the queue wait (`start - now`) through `probe`, keyed by
    /// both the packed [`LinkKey`] and the dense [`LinkIndexer`] id.
    pub fn traverse_link_probed<P: Probe>(
        &mut self,
        link: LinkId,
        now: Cycle,
        flits: u32,
        kind: MsgType,
        probe: &mut P,
    ) -> Cycle {
        let head = self.traverse_link(link, now, flits);
        let start = head - self.flit_time();
        probe.link_traverse(
            link_key(link),
            self.index.index(link) as u32,
            start,
            start + flits as Cycle * self.flit_time(),
            flits,
            kind,
            start - now,
        );
        head
    }

    /// Cycle at which `link` would next be free (no booking).
    pub fn link_free_at(&self, link: LinkId) -> Cycle {
        self.links[self.index.index(link)].free_at()
    }

    /// Total messages moved (hop count).
    pub fn messages_moved(&self) -> u64 {
        self.messages
    }

    /// Total flits serialized across all links.
    pub fn flits_moved(&self) -> u64 {
        self.flits
    }

    /// Link bookings and total cycles messages waited for busy links,
    /// summed over every link (the network's backpressure counters).
    pub fn contention(&self) -> (u64, Cycle) {
        let mut acq = 0;
        let mut stall = 0;
        for r in &self.links {
            acq += r.acquisitions();
            stall += r.stall_cycles();
        }
        (acq, stall)
    }

    /// Per-link busy-cycle report for every link ever booked, sorted by
    /// busiest first.
    pub fn utilization(&self) -> Vec<LinkUtilization> {
        let mut v: Vec<_> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, r)| r.acquisitions() > 0)
            .map(|(i, r)| LinkUtilization {
                link: self.index.link(i),
                busy_cycles: r.occupied_cycles(),
            })
            .collect();
        v.sort_unstable_by_key(|u| std::cmp::Reverse(u.busy_cycles));
        v
    }

    /// Uncontended end-to-end latency of a message over `switch_hops`
    /// switches and `switch_hops + 1` links: head pipeline time plus tail
    /// serialization. Useful as an analytic baseline in tests and reports.
    pub fn base_latency(&self, switch_hops: usize, flits: u32) -> Cycle {
        (switch_hops as Cycle + 1) * self.flit_time()
            + switch_hops as Cycle * self.core_delay()
            + self.tail_lag(flits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::config::SystemConfig;

    fn net() -> HopNetwork {
        HopNetwork::new(SystemConfig::paper_table2().switch, 16)
    }

    #[test]
    fn uncontended_link_delivers_after_one_flit_time() {
        let mut n = net();
        let arr = n.traverse_link(LinkId::ProcUp(0), 100, 5);
        assert_eq!(arr, 104, "head arrives one flit-time later");
        assert_eq!(n.link_free_at(LinkId::ProcUp(0)), 120, "busy for 5 flits x 4 cycles");
    }

    #[test]
    fn contention_queues_second_message() {
        let mut n = net();
        n.traverse_link(LinkId::ProcUp(0), 0, 5);
        let arr = n.traverse_link(LinkId::ProcUp(0), 0, 1);
        assert_eq!(arr, 24, "second message starts after 20 cycles of serialization");
    }

    #[test]
    fn different_links_do_not_contend() {
        let mut n = net();
        n.traverse_link(LinkId::ProcUp(0), 0, 5);
        let arr = n.traverse_link(LinkId::ProcUp(1), 0, 5);
        assert_eq!(arr, 4);
    }

    #[test]
    fn directions_are_separate_resources() {
        let mut n = net();
        n.traverse_link(LinkId::Up { stage: 0, lower: 1, port: 2 }, 0, 5);
        let arr = n.traverse_link(LinkId::Down { stage: 0, lower: 1, port: 2 }, 0, 5);
        assert_eq!(arr, 4, "backward link unaffected by forward traffic");
    }

    #[test]
    fn base_latency_matches_paper_arithmetic() {
        let n = net();
        // A 1-flit request over 2 switches: 3 links x 4 + 2 cores x 4 = 20.
        assert_eq!(n.base_latency(2, 1), 20);
        // A 5-flit reply over 2 switches adds 4 flits x 4 = 16 tail cycles.
        assert_eq!(n.base_latency(2, 5), 36);
    }

    #[test]
    fn link_key_packing_matches_obs_labels() {
        use dresar_obs::link_label;
        assert_eq!(link_label(link_key(LinkId::ProcUp(5))), "link:proc5.up");
        assert_eq!(link_label(link_key(LinkId::ProcDown(5))), "link:proc5.down");
        assert_eq!(link_label(link_key(LinkId::MemUp(2))), "link:mem2.up");
        assert_eq!(link_label(link_key(LinkId::MemDown(2))), "link:mem2.down");
        assert_eq!(
            link_label(link_key(LinkId::Up { stage: 1, lower: 2, port: 3 })),
            "link:s1.x2.p3.up"
        );
        assert_eq!(
            link_label(link_key(LinkId::Down { stage: 1, lower: 2, port: 3 })),
            "link:s1.x2.p3.down"
        );
    }

    #[test]
    fn probed_traversal_reports_class_wait_and_dense_id() {
        use dresar_obs::{link_label, AttribObserver};
        let mut n = net();
        let mut attrib = AttribObserver::new(1 << 20, 16, 4);
        // Two back-to-back bookings of the same link: the second waits for
        // the first's 20-cycle serialization.
        n.traverse_link_probed(LinkId::ProcUp(0), 0, 5, MsgType::ReadReply, &mut attrib);
        n.traverse_link_probed(LinkId::ProcUp(0), 0, 1, MsgType::ReadRequest, &mut attrib);
        let hm = attrib.finish();
        assert_eq!(hm.links.len(), 1);
        let l = &hm.links[0];
        assert_eq!(l.dense, 0, "ProcUp(0) is dense id 0");
        assert_eq!(link_label(l.key), "link:proc0.up");
        assert_eq!(l.load.busy_cycles, 24, "5 + 1 flits x 4 cycles");
        assert_eq!(l.load.wait_cycles, 20, "second booking queued behind the first");
        assert_eq!(l.load.class_busy[2], 20, "reply class");
        assert_eq!(l.load.class_busy[0], 4, "request class");
    }

    #[test]
    fn utilization_sorted_desc() {
        let mut n = net();
        n.traverse_link(LinkId::ProcUp(0), 0, 5);
        n.traverse_link(LinkId::ProcUp(1), 0, 1);
        n.traverse_link(LinkId::ProcUp(0), 0, 5);
        let u = n.utilization();
        assert_eq!(u[0].link, LinkId::ProcUp(0));
        assert_eq!(u[0].busy_cycles, 40);
        assert_eq!(u[1].busy_cycles, 4);
        assert_eq!(n.messages_moved(), 3);
    }
}
