//! # dresar-cache
//!
//! Set-associative cache models for the `dresar` CC-NUMA simulators.
//!
//! * [`set_assoc`] — a single set-associative array with true-LRU
//!   replacement and MSI line states.
//! * [`hierarchy`] — the two-level inclusive L1/L2 hierarchy of the paper's
//!   Table 2 (16 KB 2-way L1, 128 KB 4-way L2, shared 32-byte lines),
//!   including the external coherence operations the directory protocol
//!   needs (invalidate, downgrade-to-shared, dirty probes).
//!
//! The caches model *state*, not data payloads: the simulators track
//! coherence and timing, and the workload kernels compute on their own
//! arrays. This is the standard trace/execution-driven simulator split
//! (RSIM does the same for its L1/L2 MSHR models).

#![warn(missing_docs)]

pub mod hierarchy;
pub mod set_assoc;

pub use hierarchy::{AccessOutcome, CacheHierarchy, Eviction, HierarchyStats};
pub use set_assoc::{LineState, SetAssocCache};
