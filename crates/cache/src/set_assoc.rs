//! A set-associative cache array with coherence line states and true-LRU
//! replacement.

use dresar_types::config::CacheGeometry;
use dresar_types::BlockAddr;

/// Coherence state of a cached line. Absence from the array is the implicit
/// INVALID state. The paper's protocol (§3.2) uses only S/M; the EXCLUSIVE
/// and OWNED states exist for the MESI/MOESI members of the protocol family
/// (`dresar-protocol`) and are never installed under MSI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Read-only copy; memory (or the owner's copyback) is up to date.
    Shared,
    /// Sole clean copy (MESI/MOESI): memory is up to date, but no other
    /// cache holds the block, so a write may upgrade to MODIFIED silently.
    Exclusive,
    /// Dirty copy shared with readers (MOESI): this cache owns the block
    /// and supplies it, but other caches may hold SHARED copies.
    Owned,
    /// Exclusive dirty copy; this cache is the owner.
    Modified,
}

impl LineState {
    /// Whether a line in this state holds data newer than memory (and so
    /// must be written back or supplied on eviction/intervention).
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    state: LineState,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    valid: bool,
}

impl Way {
    const EMPTY: Way = Way { tag: 0, state: LineState::Shared, lru: 0, valid: false };
}

/// A single set-associative cache array.
///
/// Keys are [`BlockAddr`]s; the array derives (set, tag) internally from its
/// geometry. All operations are O(associativity).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    ways: u32,
    set_mask: u64,
    set_shift: u32,
    data: Vec<Way>,
    stamp: u64,
}

impl SetAssocCache {
    /// Builds an empty cache from a validated geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not validate.
    pub fn new(geom: CacheGeometry) -> Self {
        geom.validate().expect("invalid cache geometry");
        let sets = geom.sets();
        SetAssocCache {
            ways: geom.ways,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            data: vec![Way::EMPTY; (sets * geom.ways as u64) as usize],
            stamp: 0,
        }
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, block: BlockAddr) -> u64 {
        block.0 >> self.set_shift
    }

    fn set_slice(&self, set: usize) -> &[Way] {
        let base = set * self.ways as usize;
        &self.data[base..base + self.ways as usize]
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [Way] {
        let base = set * self.ways as usize;
        &mut self.data[base..base + self.ways as usize]
    }

    /// Looks up a block without touching LRU state.
    pub fn probe(&self, block: BlockAddr) -> Option<LineState> {
        let tag = self.tag_of(block);
        self.set_slice(self.set_of(block)).iter().find(|w| w.valid && w.tag == tag).map(|w| w.state)
    }

    /// Looks up a block and, on a hit, refreshes its LRU stamp.
    pub fn access(&mut self, block: BlockAddr) -> Option<LineState> {
        let tag = self.tag_of(block);
        let set = self.set_of(block);
        self.stamp += 1;
        let stamp = self.stamp;
        self.set_slice_mut(set).iter_mut().find(|w| w.valid && w.tag == tag).map(|w| {
            w.lru = stamp;
            w.state
        })
    }

    /// Changes the state of a resident block. Returns `false` if absent.
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        let tag = self.tag_of(block);
        let set = self.set_of(block);
        if let Some(w) = self.set_slice_mut(set).iter_mut().find(|w| w.valid && w.tag == tag) {
            w.state = state;
            true
        } else {
            false
        }
    }

    /// Removes a block. Returns its state if it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        let tag = self.tag_of(block);
        let set = self.set_of(block);
        if let Some(w) = self.set_slice_mut(set).iter_mut().find(|w| w.valid && w.tag == tag) {
            w.valid = false;
            Some(w.state)
        } else {
            None
        }
    }

    /// Inserts a block with `state`, evicting the LRU way of a full set.
    /// Returns the evicted block and its state, if any. Inserting a block
    /// that is already resident just updates state and LRU.
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<(BlockAddr, LineState)> {
        let tag = self.tag_of(block);
        let set = self.set_of(block);
        let set_shift = self.set_shift;
        self.stamp += 1;
        let stamp = self.stamp;
        let slice = self.set_slice_mut(set);

        if let Some(w) = slice.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.state = state;
            w.lru = stamp;
            return None;
        }
        // Prefer an invalid way; otherwise evict the smallest-stamp way.
        let victim_idx = match slice.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => slice
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("associativity >= 1"),
        };
        let victim = slice[victim_idx];
        slice[victim_idx] = Way { tag, state, lru: stamp, valid: true };
        if victim.valid {
            let victim_block = BlockAddr((victim.tag << set_shift) | set as u64);
            Some((victim_block, victim.state))
        } else {
            None
        }
    }

    /// Number of valid lines (diagnostic).
    pub fn occupancy(&self) -> usize {
        self.data.iter().filter(|w| w.valid).count()
    }

    /// Iterates all resident blocks (diagnostic; ordered by set then way).
    pub fn resident_blocks(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        let sets = self.set_mask + 1;
        (0..sets).flat_map(move |set| {
            self.set_slice(set as usize)
                .iter()
                .filter(|w| w.valid)
                .map(move |w| (BlockAddr((w.tag << self.set_shift) | set), w.state))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::config::CacheGeometry;
    use dresar_types::rng::SmallRng;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways of 32-byte lines.
        SetAssocCache::new(CacheGeometry {
            size_bytes: 256,
            line_bytes: 32,
            ways: 2,
            access_cycles: 1,
        })
    }

    #[test]
    fn insert_then_probe() {
        let mut c = small();
        assert!(c.probe(BlockAddr(5)).is_none());
        assert!(c.insert(BlockAddr(5), LineState::Shared).is_none());
        assert_eq!(c.probe(BlockAddr(5)), Some(LineState::Shared));
        assert_eq!(c.access(BlockAddr(5)), Some(LineState::Shared));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Blocks 0, 4, 8 map to set 0 (4 sets).
        c.insert(BlockAddr(0), LineState::Shared);
        c.insert(BlockAddr(4), LineState::Shared);
        c.access(BlockAddr(0)); // 4 is now LRU
        let evicted = c.insert(BlockAddr(8), LineState::Shared);
        assert_eq!(evicted, Some((BlockAddr(4), LineState::Shared)));
        assert!(c.probe(BlockAddr(0)).is_some());
        assert!(c.probe(BlockAddr(4)).is_none());
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = small();
        c.insert(BlockAddr(0), LineState::Shared);
        c.insert(BlockAddr(4), LineState::Shared);
        assert!(c.insert(BlockAddr(0), LineState::Modified).is_none());
        assert_eq!(c.probe(BlockAddr(0)), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_reports_state() {
        let mut c = small();
        c.insert(BlockAddr(3), LineState::Modified);
        assert_eq!(c.invalidate(BlockAddr(3)), Some(LineState::Modified));
        assert_eq!(c.invalidate(BlockAddr(3)), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn set_state_only_touches_resident_lines() {
        let mut c = small();
        assert!(!c.set_state(BlockAddr(1), LineState::Modified));
        c.insert(BlockAddr(1), LineState::Shared);
        assert!(c.set_state(BlockAddr(1), LineState::Modified));
        assert_eq!(c.probe(BlockAddr(1)), Some(LineState::Modified));
    }

    #[test]
    fn eviction_reconstructs_block_address() {
        let mut c = small();
        // Set index = block & 3. Block 0x13 -> set 3.
        c.insert(BlockAddr(0x13), LineState::Modified);
        c.insert(BlockAddr(0x23), LineState::Shared);
        let ev = c.insert(BlockAddr(0x33), LineState::Shared).expect("must evict");
        assert_eq!(ev, (BlockAddr(0x13), LineState::Modified));
    }

    #[test]
    fn resident_blocks_enumerates_everything() {
        let mut c = small();
        c.insert(BlockAddr(0), LineState::Shared);
        c.insert(BlockAddr(1), LineState::Modified);
        let mut v: Vec<_> = c.resident_blocks().collect();
        v.sort_by_key(|(b, _)| b.0);
        assert_eq!(v, vec![(BlockAddr(0), LineState::Shared), (BlockAddr(1), LineState::Modified)]);
    }

    /// Occupancy never exceeds capacity and a just-inserted block is
    /// always resident (seeded randomized sweep).
    #[test]
    fn capacity_respected_under_random_inserts() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut c = small();
            for _ in 0..200 {
                let block = BlockAddr(rng.gen_range(0u64..64));
                c.insert(block, LineState::Shared);
                assert!(c.probe(block).is_some(), "seed {seed}");
                assert!(c.occupancy() <= 8, "seed {seed}");
            }
        }
    }

    /// Within one set, the most recent `ways` distinct inserts are
    /// always resident (true-LRU property).
    #[test]
    fn true_lru_keeps_recent_distinct_tags() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x17);
            let len = rng.gen_range(1usize..100);
            let tags: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..16)).collect();
            let mut c = small();
            for window_end in 1..=tags.len() {
                let t = tags[window_end - 1];
                c.insert(BlockAddr(t * 4), LineState::Shared); // all map to set 0
                                                               // The last two *distinct* tags must be resident.
                let mut seen = Vec::new();
                for &u in tags[..window_end].iter().rev() {
                    if !seen.contains(&u) {
                        seen.push(u);
                    }
                    if seen.len() == 2 {
                        break;
                    }
                }
                for &u in &seen {
                    assert!(c.probe(BlockAddr(u * 4)).is_some(), "seed {seed}: tag {u} missing");
                }
            }
        }
    }
}
