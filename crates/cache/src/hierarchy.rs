//! Two-level inclusive cache hierarchy (the per-node L1/L2 of Table 2).
//!
//! The hierarchy enforces inclusion: every L1-resident block is also
//! L2-resident, so external coherence (invalidations, downgrades) only needs
//! the L2 tags, and an L2 eviction back-invalidates L1. Dirty L1 victims are
//! absorbed by L2; dirty L2 victims surface as [`Eviction::Writeback`]s that
//! the protocol turns into `WriteBack` messages to the home node.

use crate::set_assoc::{LineState, SetAssocCache};
use dresar_types::config::CacheGeometry;
use dresar_types::BlockAddr;

/// Result of a processor-side read or write probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Serviced by L1; `latency` cycles.
    L1Hit {
        /// Access latency in cycles.
        latency: u32,
    },
    /// Serviced by L2 (and filled into L1); `latency` covers both lookups.
    L2Hit {
        /// Access latency in cycles.
        latency: u32,
    },
    /// A write found only a Shared copy: ownership must be obtained from the
    /// home directory, but no data transfer is needed once granted.
    UpgradeNeeded {
        /// Cycles spent discovering the shared copy.
        latency: u32,
    },
    /// Not resident: the protocol must fetch the block.
    Miss {
        /// Cycles spent discovering the miss (both tag lookups).
        latency: u32,
    },
}

impl AccessOutcome {
    /// Whether the access completed inside the hierarchy.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::L1Hit { .. } | AccessOutcome::L2Hit { .. })
    }

    /// The lookup latency component.
    pub fn latency(&self) -> u32 {
        match *self {
            AccessOutcome::L1Hit { latency }
            | AccessOutcome::L2Hit { latency }
            | AccessOutcome::UpgradeNeeded { latency }
            | AccessOutcome::Miss { latency } => latency,
        }
    }
}

/// A block displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// An L2 victim the home still books this node as owner of (Modified,
    /// Owned, or MESI's clean Exclusive): must be announced to its home. A
    /// silently dropped Exclusive line would leave the home forwarding
    /// interventions at a cache that can no longer serve them.
    Writeback(BlockAddr),
    /// A clean victim, dropped silently. (The base protocol sends no
    /// replacement hints, matching the paper's full-map scheme where clean
    /// sharers linger in the directory vector until invalidated.)
    Drop(BlockAddr),
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Reads hitting L1.
    pub l1_read_hits: u64,
    /// Reads hitting L2.
    pub l2_read_hits: u64,
    /// Reads missing both levels.
    pub read_misses: u64,
    /// Writes hitting a Modified line.
    pub write_hits: u64,
    /// Writes hitting a Shared line (upgrade required).
    pub write_upgrades: u64,
    /// Writes missing both levels.
    pub write_misses: u64,
    /// Blocks installed via [`CacheHierarchy::fill`].
    pub fills: u64,
    /// Dirty L2 victims surfaced as [`Eviction::Writeback`]s.
    pub writebacks: u64,
    /// Modified copies surrendered to external coherence — downgrades plus
    /// invalidations that destroyed a dirty line. Each is a block this cache
    /// served (or owed) to another node: the CtoC supply side.
    pub ctoc_serves: u64,
}

impl HierarchyStats {
    /// Accumulates another node's counters into this one.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1_read_hits += other.l1_read_hits;
        self.l2_read_hits += other.l2_read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_upgrades += other.write_upgrades;
        self.write_misses += other.write_misses;
        self.fills += other.fills;
        self.writebacks += other.writebacks;
        self.ctoc_serves += other.ctoc_serves;
    }
}

/// The inclusive L1/L2 hierarchy of one node.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l1_latency: u32,
    l2_latency: u32,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy. Panics if the geometries are invalid or use
    /// different line sizes (inclusion requires a common block identity).
    pub fn new(l1: CacheGeometry, l2: CacheGeometry) -> Self {
        assert_eq!(l1.line_bytes, l2.line_bytes, "L1/L2 must share a line size");
        assert!(l2.size_bytes >= l1.size_bytes, "inclusion requires |L2| >= |L1|");
        CacheHierarchy {
            l1_latency: l1.access_cycles,
            l2_latency: l2.access_cycles,
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
            stats: HierarchyStats::default(),
        }
    }

    /// Processor read probe.
    pub fn read(&mut self, block: BlockAddr) -> AccessOutcome {
        if self.l1.access(block).is_some() {
            self.stats.l1_read_hits += 1;
            return AccessOutcome::L1Hit { latency: self.l1_latency };
        }
        if let Some(state) = self.l2.access(block) {
            self.stats.l2_read_hits += 1;
            self.fill_l1(block, state);
            return AccessOutcome::L2Hit { latency: self.l1_latency + self.l2_latency };
        }
        self.stats.read_misses += 1;
        AccessOutcome::Miss { latency: self.l1_latency + self.l2_latency }
    }

    /// Processor write probe. An Exclusive line upgrades to Modified
    /// silently (the MESI/MOESI E-state rule: the home already books this
    /// node as owner, so no directory transaction is needed) and counts as
    /// an ordinary write hit; an Owned line still needs an upgrade, because
    /// other caches hold Shared copies that must be invalidated.
    pub fn write(&mut self, block: BlockAddr) -> AccessOutcome {
        match self.l1.access(block) {
            Some(LineState::Modified) => {
                self.stats.write_hits += 1;
                return AccessOutcome::L1Hit { latency: self.l1_latency };
            }
            Some(LineState::Exclusive) => {
                self.l1.set_state(block, LineState::Modified);
                self.l2.set_state(block, LineState::Modified);
                self.stats.write_hits += 1;
                return AccessOutcome::L1Hit { latency: self.l1_latency };
            }
            Some(LineState::Shared | LineState::Owned) => {
                self.stats.write_upgrades += 1;
                return AccessOutcome::UpgradeNeeded { latency: self.l1_latency };
            }
            None => {}
        }
        match self.l2.access(block) {
            Some(LineState::Modified) => {
                self.stats.write_hits += 1;
                self.fill_l1(block, LineState::Modified);
                AccessOutcome::L2Hit { latency: self.l1_latency + self.l2_latency }
            }
            Some(LineState::Exclusive) => {
                self.l2.set_state(block, LineState::Modified);
                self.stats.write_hits += 1;
                self.fill_l1(block, LineState::Modified);
                AccessOutcome::L2Hit { latency: self.l1_latency + self.l2_latency }
            }
            Some(LineState::Shared | LineState::Owned) => {
                self.stats.write_upgrades += 1;
                AccessOutcome::UpgradeNeeded { latency: self.l1_latency + self.l2_latency }
            }
            None => {
                self.stats.write_misses += 1;
                AccessOutcome::Miss { latency: self.l1_latency + self.l2_latency }
            }
        }
    }

    /// Installs (or upgrades) a block with `state`, returning any external
    /// consequences (dirty writebacks, silent drops) caused by L2 evictions.
    pub fn fill(&mut self, block: BlockAddr, state: LineState) -> Vec<Eviction> {
        let mut out = Vec::new();
        self.stats.fills += 1;
        if let Some((victim, victim_state)) = self.l2.insert(block, state) {
            // Inclusion: the L2 victim must leave L1 too. A dirty L1 copy of
            // the victim makes the writeback carry the freshest data; either
            // way the victim's dirtiness decides Writeback vs Drop.
            let l1_victim_state = self.l1.invalidate(victim);
            let owned_by_home = |s: LineState| s.is_dirty() || s == LineState::Exclusive;
            let dirty = owned_by_home(victim_state) || l1_victim_state.is_some_and(owned_by_home);
            if dirty {
                self.stats.writebacks += 1;
            }
            out.push(if dirty { Eviction::Writeback(victim) } else { Eviction::Drop(victim) });
        }
        self.fill_l1(block, state);
        out
    }

    /// Installs into L1, absorbing a dirty L1 victim into L2. L1 evictions
    /// never surface externally thanks to inclusion.
    fn fill_l1(&mut self, block: BlockAddr, state: LineState) {
        if let Some((victim, st)) = self.l1.insert(block, state) {
            if st.is_dirty() {
                // Write the dirty L1 victim back into L2 (must be resident
                // by inclusion).
                let present = self.l2.set_state(victim, st);
                debug_assert!(present, "inclusion violated: dirty L1 victim absent from L2");
            }
        }
    }

    /// External invalidation (on behalf of a writer elsewhere). Returns
    /// `true` if a Modified copy was destroyed (the protocol then owes the
    /// home a data transfer — handled by the caller via CtoC semantics).
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let l1 = self.l1.invalidate(block);
        let l2 = self.l2.invalidate(block);
        let supplier =
            |s: Option<LineState>| s.is_some_and(|s| s.is_dirty() || s == LineState::Exclusive);
        let was_dirty = supplier(l1) || supplier(l2);
        if was_dirty {
            self.stats.ctoc_serves += 1;
        }
        was_dirty
    }

    /// External downgrade to Shared (a cache-to-cache read intervention in
    /// the MSI/MESI protocols). Returns `true` if this cache actually held
    /// the block as its supplier.
    pub fn downgrade(&mut self, block: BlockAddr) -> bool {
        self.downgrade_to(block, LineState::Shared)
    }

    /// External downgrade to `state`: MSI read interventions make M -> S,
    /// MESI's clean E -> S, MOESI retains dirty ownership with M -> O (and
    /// an O holder serving a read stays O). Returns `true` if this cache
    /// was the block's supplier (held it Modified, Owned or Exclusive).
    pub fn downgrade_to(&mut self, block: BlockAddr, state: LineState) -> bool {
        let was_supplier =
            self.probe(block).is_some_and(|s| s.is_dirty() || s == LineState::Exclusive);
        if was_supplier {
            self.stats.ctoc_serves += 1;
        }
        if self.l1.probe(block).is_some() {
            self.l1.set_state(block, state);
        }
        if self.l2.probe(block).is_some() {
            self.l2.set_state(block, state);
        }
        was_supplier
    }

    /// Iterates every resident block with its coherence state. Inclusion
    /// makes L2 authoritative, so this walks L2 only. Order follows the
    /// array layout (deterministic for identical access histories).
    pub fn resident_blocks(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        self.l2.resident_blocks()
    }

    /// Authoritative state of a block (the strongest level's record wins,
    /// so L1 dirtiness beats a stale L2 Shared: M > O > E > S).
    pub fn probe(&self, block: BlockAddr) -> Option<LineState> {
        fn rank(s: LineState) -> u8 {
            match s {
                LineState::Modified => 3,
                LineState::Owned => 2,
                LineState::Exclusive => 1,
                LineState::Shared => 0,
            }
        }
        match (self.l1.probe(block), self.l2.probe(block)) {
            (None, None) => None,
            (Some(s), None) | (None, Some(s)) => Some(s),
            (Some(a), Some(b)) => Some(if rank(a) >= rank(b) { a } else { b }),
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Checks the inclusion invariant (every L1 block is in L2). O(|L1|);
    /// used by tests and debug assertions, not hot paths.
    pub fn inclusion_holds(&self) -> bool {
        self.l1.resident_blocks().all(|(b, _)| self.l2.probe(b).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::config::CacheGeometry;
    use dresar_types::rng::SmallRng;

    fn tiny() -> CacheHierarchy {
        // L1: 2 sets x 1 way; L2: 2 sets x 2 ways. 32-byte lines.
        CacheHierarchy::new(
            CacheGeometry { size_bytes: 64, line_bytes: 32, ways: 1, access_cycles: 1 },
            CacheGeometry { size_bytes: 128, line_bytes: 32, ways: 2, access_cycles: 8 },
        )
    }

    #[test]
    fn read_miss_then_fill_then_hits() {
        let mut h = tiny();
        assert_eq!(h.read(BlockAddr(0)), AccessOutcome::Miss { latency: 9 });
        assert!(h.fill(BlockAddr(0), LineState::Shared).is_empty());
        assert_eq!(h.read(BlockAddr(0)), AccessOutcome::L1Hit { latency: 1 });
        assert_eq!(h.stats().l1_read_hits, 1);
        assert_eq!(h.stats().read_misses, 1);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Shared);
        h.fill(BlockAddr(2), LineState::Shared); // evicts 0 from L1 (1-way set 0), stays in L2
        assert_eq!(h.read(BlockAddr(0)), AccessOutcome::L2Hit { latency: 9 });
        assert_eq!(h.read(BlockAddr(0)), AccessOutcome::L1Hit { latency: 1 });
    }

    #[test]
    fn write_to_shared_requires_upgrade() {
        let mut h = tiny();
        h.fill(BlockAddr(1), LineState::Shared);
        assert!(matches!(h.write(BlockAddr(1)), AccessOutcome::UpgradeNeeded { .. }));
        h.fill(BlockAddr(1), LineState::Modified);
        assert!(matches!(h.write(BlockAddr(1)), AccessOutcome::L1Hit { .. }));
        assert_eq!(h.stats().write_upgrades, 1);
        assert_eq!(h.stats().write_hits, 1);
    }

    #[test]
    fn dirty_l2_eviction_surfaces_writeback() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Modified);
        h.fill(BlockAddr(2), LineState::Shared);
        // Set 0 of L2 now has blocks 0(M) and 2(S); next fill evicts LRU = 0.
        let ev = h.fill(BlockAddr(4), LineState::Shared);
        assert_eq!(ev, vec![Eviction::Writeback(BlockAddr(0))]);
        assert!(h.probe(BlockAddr(0)).is_none(), "back-invalidated from L1 too");
        assert!(h.inclusion_holds());
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Shared);
        h.fill(BlockAddr(2), LineState::Shared);
        let ev = h.fill(BlockAddr(4), LineState::Shared);
        assert_eq!(ev, vec![Eviction::Drop(BlockAddr(0))]);
    }

    #[test]
    fn dirty_l1_victim_promotes_writeback() {
        let mut h = tiny();
        // Block 0 dirty in L1. Fill block 2 (same L1 set, different L2 way):
        // L1 evicts 0 dirty -> absorbed by L2.
        h.fill(BlockAddr(0), LineState::Modified);
        // Make L2's record of 0 Shared to prove the L1 victim re-dirties it.
        // (This can't happen in protocol flow; it isolates fill_l1.)
        h.l2.set_state(BlockAddr(0), LineState::Shared);
        h.fill(BlockAddr(2), LineState::Shared);
        assert_eq!(h.l2.probe(BlockAddr(0)), Some(LineState::Modified));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Modified);
        assert!(h.invalidate(BlockAddr(0)));
        assert!(!h.invalidate(BlockAddr(0)));
        h.fill(BlockAddr(1), LineState::Shared);
        assert!(!h.invalidate(BlockAddr(1)));
    }

    #[test]
    fn downgrade_makes_shared() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Modified);
        assert!(h.downgrade(BlockAddr(0)));
        assert_eq!(h.probe(BlockAddr(0)), Some(LineState::Shared));
        assert!(!h.downgrade(BlockAddr(0)), "second downgrade finds no Modified copy");
        assert!(!h.downgrade(BlockAddr(9)), "absent block");
    }

    #[test]
    fn fill_writeback_and_ctoc_counters() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Modified);
        h.fill(BlockAddr(2), LineState::Shared);
        h.fill(BlockAddr(4), LineState::Shared); // evicts dirty block 0
        assert_eq!(h.stats().fills, 3);
        assert_eq!(h.stats().writebacks, 1);
        // CtoC supply: downgrade of a dirty line counts, of a clean one not.
        h.fill(BlockAddr(6), LineState::Modified);
        h.downgrade(BlockAddr(6));
        h.downgrade(BlockAddr(6)); // now Shared: not a serve
        assert_eq!(h.stats().ctoc_serves, 1);
        // Invalidation destroying a dirty copy counts too.
        h.fill(BlockAddr(8), LineState::Modified);
        h.invalidate(BlockAddr(8));
        h.invalidate(BlockAddr(2)); // clean: not a serve
        assert_eq!(h.stats().ctoc_serves, 2);
    }

    #[test]
    fn exclusive_write_upgrades_silently() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Exclusive);
        assert_eq!(h.probe(BlockAddr(0)), Some(LineState::Exclusive));
        assert!(matches!(h.write(BlockAddr(0)), AccessOutcome::L1Hit { .. }));
        assert_eq!(h.probe(BlockAddr(0)), Some(LineState::Modified));
        assert_eq!(h.stats().write_hits, 1);
        assert_eq!(h.stats().write_upgrades, 0, "E upgrade is silent, not a directory upgrade");
        // The L2 record must have upgraded too, or an L1 eviction would
        // lose dirtiness.
        h.fill(BlockAddr(2), LineState::Shared);
        let ev = h.fill(BlockAddr(4), LineState::Shared);
        assert_eq!(ev, vec![Eviction::Writeback(BlockAddr(0))]);
    }

    #[test]
    fn exclusive_upgrade_through_l2_after_l1_eviction() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Exclusive);
        h.fill(BlockAddr(2), LineState::Shared); // evicts 0 from 1-way L1 set
        assert!(matches!(h.write(BlockAddr(0)), AccessOutcome::L2Hit { .. }));
        assert_eq!(h.probe(BlockAddr(0)), Some(LineState::Modified));
    }

    #[test]
    fn exclusive_eviction_is_announced_not_dropped() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Exclusive);
        h.fill(BlockAddr(2), LineState::Shared);
        let ev = h.fill(BlockAddr(4), LineState::Shared);
        assert_eq!(ev, vec![Eviction::Writeback(BlockAddr(0))], "home books us as owner");
    }

    #[test]
    fn owned_lines_need_upgrades_and_keep_serving_reads() {
        let mut h = tiny();
        h.fill(BlockAddr(0), LineState::Owned);
        assert!(matches!(h.write(BlockAddr(0)), AccessOutcome::UpgradeNeeded { .. }));
        assert_eq!(h.stats().write_upgrades, 1);
        // A MOESI owner serving a read intervention stays Owned and counts
        // a CtoC serve each time.
        assert!(h.downgrade_to(BlockAddr(0), LineState::Owned));
        assert!(h.downgrade_to(BlockAddr(0), LineState::Owned));
        assert_eq!(h.probe(BlockAddr(0)), Some(LineState::Owned));
        assert_eq!(h.stats().ctoc_serves, 2);
        // Invalidating the dirty owner is a serve as well.
        assert!(h.invalidate(BlockAddr(0)));
        assert_eq!(h.stats().ctoc_serves, 3);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn mismatched_line_sizes_rejected() {
        CacheHierarchy::new(
            CacheGeometry { size_bytes: 64, line_bytes: 32, ways: 1, access_cycles: 1 },
            CacheGeometry { size_bytes: 128, line_bytes: 64, ways: 2, access_cycles: 8 },
        );
    }

    /// Inclusion holds under any interleaving of fills, invalidations,
    /// downgrades, reads and writes (seeded randomized sweep).
    #[test]
    fn inclusion_invariant_under_random_interleavings() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut h = tiny();
            for step in 0..300 {
                let op = rng.gen_range(0u8..5);
                let b = rng.gen_range(0u64..32);
                let block = BlockAddr(b);
                match op {
                    0 => {
                        h.read(block);
                    }
                    1 => {
                        h.write(block);
                    }
                    2 => {
                        h.fill(
                            block,
                            if b.is_multiple_of(2) {
                                LineState::Shared
                            } else {
                                LineState::Modified
                            },
                        );
                    }
                    3 => {
                        h.invalidate(block);
                    }
                    _ => {
                        h.downgrade(block);
                    }
                }
                assert!(h.inclusion_holds(), "seed {seed} step {step}");
            }
        }
    }

    /// After a fill the block is readable as a hit, whatever history
    /// preceded it.
    #[test]
    fn fill_guarantees_hit_after_any_history() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
            let mut h = tiny();
            for _ in 0..rng.gen_range(0usize..100) {
                h.fill(BlockAddr(rng.gen_range(0u64..32)), LineState::Shared);
            }
            let b = rng.gen_range(0u64..32);
            h.fill(BlockAddr(b), LineState::Shared);
            assert!(h.read(BlockAddr(b)).is_hit(), "seed {seed} block {b}");
        }
    }
}
