//! The Table 3 constant-latency trace simulator.

use dresar::switchdir::{GenMsg, SnoopAction, SwitchDirectory};
use dresar_cache::{LineState, SetAssocCache};
use dresar_directory::{DirAction, HomeDirectory};
use dresar_interconnect::{Bmin, SwitchId};
use dresar_stats::{BlockHistogram, ReadClass, ReadStats};
use dresar_types::addr::AddressMap;
use dresar_types::config::TraceSimConfig;
use dresar_types::msg::{Endpoint, Message, MsgType};
use dresar_types::{BlockAddr, Cycle, NodeId, RefKind, SharerSet, StreamItem, Workload};

/// Results of a trace-driven run.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Workload name.
    pub workload: String,
    /// Aggregated read classification/latency counters.
    pub reads: ReadStats,
    /// Execution time: max per-processor cycle count (with barrier sync).
    pub exec_cycles: Cycle,
    /// Cache hits (reads serviced inside the cache).
    pub read_hits: u64,
    /// Total writes processed.
    pub writes: u64,
    /// Home-directory counters.
    pub dir: dresar_directory::DirStats,
    /// Aggregated switch-directory counters.
    pub sd: dresar::switchdir::SdStats,
    /// Per-block histogram (Figure 2), if requested.
    pub histogram: Option<BlockHistogram>,
}

impl TraceReport {
    /// Home-node cache-to-cache transfers (Figure 8's metric).
    pub fn home_ctoc(&self) -> u64 {
        self.reads.ctoc_home
    }

    /// Average read-miss latency (Figure 9's basis).
    pub fn avg_read_latency(&self) -> f64 {
        self.reads.avg_latency()
    }

    /// Average latency over *all* reads including cache hits — the metric
    /// read-stall reductions follow more closely.
    pub fn avg_read_latency_incl_hits(&self, cache_access: u32) -> f64 {
        let total = self.reads.total() + self.read_hits;
        if total == 0 {
            return 0.0;
        }
        (self.reads.latency_cycles + self.read_hits * cache_access as u64) as f64 / total as f64
    }
}

impl dresar_types::ToJson for TraceReport {
    /// Machine-readable document mirroring `ExecutionReport`'s shape where
    /// the two overlap (workload/reads/dir/sd plus derived latencies), so
    /// serving clients can treat either driver's response uniformly. The
    /// per-block histogram is not serialized (same as `ExecutionReport`,
    /// whose JSON form omits it).
    fn to_json(&self) -> dresar_types::JsonValue {
        dresar_types::JsonValue::obj()
            .field("workload", self.workload.as_str())
            .field("exec_cycles", self.exec_cycles)
            .field("reads", self.reads.to_json())
            .field("read_hits", self.read_hits)
            .field("writes", self.writes)
            .field("dir", self.dir.to_json())
            .field("sd", self.sd.to_json())
            .field("avg_read_latency", self.avg_read_latency())
            .field("dirty_read_fraction", self.reads.dirty_fraction())
            .build()
    }
}

/// The trace-driven simulator.
pub struct TraceSimulator {
    cfg: TraceSimConfig,
    map: AddressMap,
    bmin: Bmin,
    caches: Vec<SetAssocCache>,
    dir: HomeDirectory,
    sdirs: Vec<Option<SwitchDirectory>>,
    exec: Vec<Cycle>,
    stats: ReadStats,
    read_hits: u64,
    writes: u64,
    histogram: Option<BlockHistogram>,
    msg_seq: u64,
    /// Class of the read currently being serviced, handed from `do_read`
    /// to `run` for latency-weighted recording.
    pending_class: Option<ReadClass>,
}

impl TraceSimulator {
    /// Builds a simulator for the configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: TraceSimConfig) -> Self {
        cfg.validate().expect("invalid trace-sim configuration");
        let bmin = Bmin::new(cfg.nodes, cfg.switch_radix as usize);
        TraceSimulator {
            map: cfg.address_map(),
            caches: (0..cfg.nodes).map(|_| SetAssocCache::new(cfg.cache)).collect(),
            dir: HomeDirectory::with_nodes(usize::MAX / 2, cfg.nodes),
            sdirs: (0..bmin.total_switches())
                .map(|_| cfg.switch_dir.map(SwitchDirectory::new))
                .collect(),
            exec: vec![0; cfg.nodes],
            stats: ReadStats::default(),
            read_hits: 0,
            writes: 0,
            histogram: None,
            msg_seq: 0,
            pending_class: None,
            bmin,
            cfg,
        }
    }

    /// Enables Figure 2 histogram collection.
    pub fn collect_histogram(&mut self) {
        self.histogram = Some(BlockHistogram::new());
    }

    fn linear(&self, sw: SwitchId) -> usize {
        sw.stage as usize * self.bmin.switches_per_stage() + sw.index as usize
    }

    fn mk_msg(
        &mut self,
        kind: MsgType,
        block: BlockAddr,
        requester: NodeId,
        dst: NodeId,
    ) -> Message {
        self.msg_seq += 1;
        Message::new(
            self.msg_seq,
            kind,
            block,
            Endpoint::Proc(requester),
            Endpoint::Mem(dst),
            requester,
            0,
        )
    }

    /// Snoops `msg` along the switches of the `p -> home` path (in path
    /// order if `toward_home`, reversed otherwise). Returns the first
    /// non-Forward outcome with the switch it happened at, after applying
    /// any in-place marking; forwarded messages traverse all switches.
    fn walk_path(
        &mut self,
        p: NodeId,
        home: NodeId,
        msg: &mut Message,
        toward_home: bool,
    ) -> Option<(SwitchId, SnoopAction)> {
        if p == home || self.cfg.switch_dir.is_none() {
            return None;
        }
        let mut path = self.bmin.path_switches(p, home);
        if !toward_home {
            path.reverse();
        }
        for sw in path {
            let idx = self.linear(sw);
            let action = match self.sdirs[idx].as_mut() {
                Some(sd) => sd.snoop(msg),
                None => SnoopAction::Forward,
            };
            match action {
                SnoopAction::Forward => {}
                other => return Some((sw, other)),
            }
        }
        None
    }

    /// Runs the full ownership-transfer bookkeeping when `owner` supplies
    /// the block to `requester` via a read CtoC (owner downgrades, the
    /// copyback walks home and updates the directory).
    fn complete_read_ctoc(&mut self, block: BlockAddr, owner: NodeId, requester: NodeId) {
        let home = self.map.home_of_block(block);
        self.caches[owner as usize].set_state(block, LineState::Shared);
        let mut cb = self.mk_msg(MsgType::CopyBack, block, owner, home);
        cb.carried_sharers = SharerSet::singleton(requester);
        // The copyback passes the owner->home switches: cleans the
        // TRANSIENT entry and picks up any accumulated sharers.
        let _ = self.walk_path(owner, home, &mut cb, true);
        let carried = {
            let mut c = cb.carried_sharers;
            c.remove(owner);
            c
        };
        let _ = self.dir.handle_copyback(block, owner, carried, false);
    }

    /// Processes one read by processor `p`; returns the latency charged.
    fn do_read(&mut self, p: NodeId, block: BlockAddr) -> Cycle {
        let lat = self.cfg.latencies;
        if self.caches[p as usize].access(block).is_some() {
            self.read_hits += 1;
            return lat.cache_access as Cycle;
        }
        let home = self.map.home_of_block(block);

        // The request walks its path; a switch directory may intercept.
        let mut req = self.mk_msg(MsgType::ReadRequest, block, p, home);
        if let Some((_, action)) = self.walk_path(p, home, &mut req, true) {
            match action {
                SnoopAction::SinkSend(gen) => {
                    if let Some(GenMsg::CtoCRequest { owner, requester }) = gen.first().copied() {
                        debug_assert_eq!(requester, p);
                        debug_assert_eq!(
                            self.caches[owner as usize].probe(block),
                            Some(LineState::Modified),
                            "switch-directory hint must point at the true owner \
                             (transactions are atomic in the trace model)"
                        );
                        self.complete_read_ctoc(block, owner, p);
                        self.fill(p, block, LineState::Shared);
                        self.record_read(block, ReadClass::DirtyCtoCSwitch);
                        return lat.switch_dir_hit as Cycle;
                    }
                    // A Retry cannot occur: transients resolve within one
                    // atomic transaction.
                    unreachable!("unexpected switch-directory generation for a read");
                }
                SnoopAction::Sink | SnoopAction::ForwardSend(_) => {
                    unreachable!("reads are either forwarded or sunk-with-CtoC")
                }
                SnoopAction::Forward => unreachable!("walk_path filters Forward"),
            }
        }

        // Home-node path.
        match self.dir.handle_read(block, p) {
            DirAction::ReadReplyClean { .. } => {
                self.fill(p, block, LineState::Shared);
                self.record_read(block, ReadClass::CleanMemory);
                if p == home {
                    lat.local_memory as Cycle
                } else {
                    lat.remote_memory as Cycle
                }
            }
            DirAction::ForwardCtoC { owner, .. } => {
                // The home-forwarded intervention completes atomically.
                let c = self.dir.handle_copyback(block, owner, SharerSet::EMPTY, false);
                debug_assert_eq!(c.actions.len(), 1);
                self.caches[owner as usize].set_state(block, LineState::Shared);
                // The copyback still cleans stale switch entries.
                let mut cb = self.mk_msg(MsgType::CopyBack, block, owner, home);
                let _ = self.walk_path(owner, home, &mut cb, true);
                self.fill(p, block, LineState::Shared);
                self.record_read(block, ReadClass::DirtyCtoCHome);
                if p == home {
                    lat.ctoc_local_home as Cycle
                } else {
                    lat.ctoc_remote_home as Cycle
                }
            }
            other => unreachable!("atomic trace model: unexpected {other:?}"),
        }
    }

    /// Processes one write by processor `p` (timing: always a cache hit,
    /// per the paper's release-consistency approximation; coherence: full
    /// protocol effect, executed atomically).
    fn do_write(&mut self, p: NodeId, block: BlockAddr) -> Cycle {
        self.writes += 1;
        let lat_cycles = self.cfg.latencies.cache_access as Cycle;
        if self.caches[p as usize].access(block) == Some(LineState::Modified) {
            return lat_cycles;
        }
        let home = self.map.home_of_block(block);

        // The ownership request invalidates stale switch entries en route.
        let mut req = self.mk_msg(MsgType::WriteRequest, block, p, home);
        let intercepted = self.walk_path(p, home, &mut req, true);
        debug_assert!(intercepted.is_none(), "no TRANSIENT entries persist between ops");

        match self.dir.handle_write(block, p) {
            DirAction::WriteReplyGrant { .. } => {}
            DirAction::Invalidate { targets, .. } => {
                for t in targets.iter() {
                    self.caches[t as usize].invalidate(block);
                    let c = self.dir.handle_inval_ack(block);
                    if !c.actions.is_empty() {
                        debug_assert!(matches!(c.actions[0], DirAction::WriteReplyGrant { .. }));
                    }
                }
            }
            DirAction::ForwardCtoC { owner, .. } => {
                // The intervention travels home -> owner, invalidating the
                // stale MODIFIED entries recorded along the old owner's
                // path (they would otherwise mis-route later reads).
                let mut intervention = self.mk_msg(MsgType::CtoCRequest, block, p, home);
                let _ = self.walk_path(owner, home, &mut intervention, false);
                self.caches[owner as usize].invalidate(block);
                let _ = self.dir.handle_copyback(block, owner, SharerSet::EMPTY, false);
            }
            other => unreachable!("atomic trace model: unexpected {other:?}"),
        }
        debug_assert_eq!(self.dir.state(block), dresar_directory::DirState::Modified(p));

        // The ownership reply flows home -> writer, installing entries.
        let mut reply = self.mk_msg(MsgType::WriteReply, block, p, home);
        let _ = self.walk_path(p, home, &mut reply, false);

        self.fill(p, block, LineState::Modified);
        lat_cycles
    }

    /// Installs a block, handling dirty evictions (instant writebacks that
    /// clean switch entries and free the directory state).
    fn fill(&mut self, p: NodeId, block: BlockAddr, state: LineState) {
        if let Some((victim, LineState::Modified)) = self.caches[p as usize].insert(block, state) {
            let vh = self.map.home_of_block(victim);
            let mut wb = self.mk_msg(MsgType::WriteBack, victim, p, vh);
            let _ = self.walk_path(p, vh, &mut wb, true);
            let carried = {
                let mut c = wb.carried_sharers;
                c.remove(p);
                c
            };
            let _ = self.dir.handle_writeback(victim, p, carried);
        }
    }

    fn record_read(&mut self, block: BlockAddr, class: ReadClass) {
        if let Some(h) = self.histogram.as_mut() {
            h.record_miss(block, class != ReadClass::CleanMemory);
        }
        self.pending_class = Some(class);
    }

    /// Runs a workload to completion and reports.
    pub fn run(mut self, workload: &Workload) -> TraceReport {
        workload.validate().expect("invalid workload");
        assert!(workload.streams.len() <= self.cfg.nodes);
        let n = self.cfg.nodes;
        let mut pc = vec![0usize; n];
        let streams: Vec<&[StreamItem]> =
            (0..n).map(|p| workload.streams.get(p).map(|s| s.as_slice()).unwrap_or(&[])).collect();

        loop {
            // Phase 1: round-robin refs until everyone is at a barrier/end.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for p in 0..n {
                    if let Some(StreamItem::Ref(r)) = streams[p].get(pc[p]) {
                        let block = self.map.block(r.addr);
                        let work = r.work as Cycle; // single-issue
                        let access = match r.kind {
                            RefKind::Read => {
                                let lat = self.do_read(p as NodeId, block);
                                if let Some(class) = self.pending_class.take() {
                                    self.stats.record(class, lat);
                                    self.stats.stall_cycles += lat;
                                }
                                lat
                            }
                            RefKind::Write => self.do_write(p as NodeId, block),
                        };
                        self.exec[p] += work + access;
                        pc[p] += 1;
                        progressed = true;
                    }
                }
            }
            // Phase 2: everyone is at a barrier or done; advance barriers.
            let mut advanced = false;
            for p in 0..n {
                if matches!(streams[p].get(pc[p]), Some(StreamItem::Barrier(_))) {
                    pc[p] += 1;
                    advanced = true;
                }
            }
            if advanced {
                // Barrier synchronizes time.
                let t = *self.exec.iter().max().unwrap();
                for e in &mut self.exec {
                    *e = t;
                }
            } else {
                break;
            }
        }

        let mut sd = dresar::switchdir::SdStats::default();
        for s in self.sdirs.iter().flatten() {
            sd.merge(&s.stats());
        }
        TraceReport {
            workload: workload.name.clone(),
            reads: self.stats,
            exec_cycles: *self.exec.iter().max().unwrap_or(&0),
            read_hits: self.read_hits,
            writes: self.writes,
            dir: self.dir.stats(),
            sd,
            histogram: self.histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::StreamItem;

    fn cfg(sd: bool) -> TraceSimConfig {
        if sd {
            TraceSimConfig::paper_table3()
        } else {
            TraceSimConfig::paper_base()
        }
    }

    fn wl(streams: Vec<Vec<StreamItem>>) -> Workload {
        Workload { name: "t".into(), streams }
    }

    /// A remote block address homed at the given node.
    fn addr_homed_at(node: u64) -> u64 {
        node * 4096
    }

    #[test]
    fn clean_remote_read_costs_260() {
        let w = wl(vec![vec![StreamItem::read(addr_homed_at(5), 0)]]);
        let r = TraceSimulator::new(cfg(false)).run(&w);
        assert_eq!(r.reads.clean, 1);
        assert_eq!(r.reads.latency_cycles, 260);
    }

    #[test]
    fn clean_local_read_costs_100() {
        let w = wl(vec![vec![StreamItem::read(addr_homed_at(0), 0)]]);
        let r = TraceSimulator::new(cfg(false)).run(&w);
        assert_eq!(r.reads.latency_cycles, 100);
    }

    #[test]
    fn cache_hit_costs_8() {
        let w = wl(vec![vec![
            StreamItem::read(addr_homed_at(5), 0),
            StreamItem::read(addr_homed_at(5), 0),
        ]]);
        let r = TraceSimulator::new(cfg(false)).run(&w);
        assert_eq!(r.read_hits, 1);
        assert_eq!(r.exec_cycles, 260 + 8);
    }

    #[test]
    fn dirty_read_home_path_costs_320() {
        let w = wl(vec![
            vec![StreamItem::write(addr_homed_at(5), 0), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(addr_homed_at(5), 0)],
        ]);
        let r = TraceSimulator::new(cfg(false)).run(&w);
        assert_eq!(r.reads.ctoc_home, 1);
        assert_eq!(r.reads.latency_cycles, 320);
        assert_eq!(r.dir.reads_ctoc, 1);
    }

    #[test]
    fn switch_directory_serves_dirty_read_at_200() {
        let w = wl(vec![
            vec![StreamItem::write(addr_homed_at(5), 0), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(addr_homed_at(5), 0)],
        ]);
        let r = TraceSimulator::new(cfg(true)).run(&w);
        assert_eq!(r.reads.ctoc_switch, 1, "switch directory must intercept");
        assert_eq!(r.reads.latency_cycles, 200);
        assert_eq!(r.dir.reads_ctoc, 0);
        assert!(r.sd.read_hits >= 1);
    }

    #[test]
    fn local_accesses_bypass_switch_directories() {
        // Writer's home == writer: no reply path, no entries, so the later
        // remote read goes to the home.
        let w = wl(vec![
            vec![StreamItem::write(addr_homed_at(0), 0), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(addr_homed_at(0), 0)],
        ]);
        let r = TraceSimulator::new(cfg(true)).run(&w);
        assert_eq!(r.reads.ctoc_switch, 0);
        assert_eq!(r.reads.ctoc_home, 1);
    }

    #[test]
    fn directory_stays_exact_after_switch_serve() {
        // write by 1 (home 5), read by 2 via switch, then write by 3 must
        // see both sharers.
        let a = addr_homed_at(5);
        let w = wl(vec![
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1)],
            vec![StreamItem::write(a, 0), StreamItem::Barrier(0), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::read(a, 0), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1), StreamItem::write(a, 0)],
        ]);
        let r = TraceSimulator::new(cfg(true)).run(&w);
        assert_eq!(r.reads.ctoc_switch, 1);
        assert!(r.dir.invals_sent >= 2, "both owner and switch-served sharer invalidated");
    }

    #[test]
    fn write_after_write_transfers_ownership() {
        let a = addr_homed_at(7);
        let w = wl(vec![
            vec![StreamItem::write(a, 0), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::write(a, 0)],
        ]);
        let r = TraceSimulator::new(cfg(false)).run(&w);
        assert_eq!(r.dir.writes_ctoc, 1);
        assert_eq!(r.writes, 2);
    }

    #[test]
    fn barriers_synchronize_exec_time() {
        let w = wl(vec![
            vec![StreamItem::read(addr_homed_at(1), 100), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(addr_homed_at(2), 0)],
        ]);
        let r = TraceSimulator::new(cfg(false)).run(&w);
        // Proc 1's read starts only after proc 0's work+miss.
        assert_eq!(r.exec_cycles, (100 + 260) + 260);
    }

    #[test]
    fn histogram_collects_misses() {
        let mut sim = TraceSimulator::new(cfg(false));
        sim.collect_histogram();
        let w = wl(vec![vec![
            StreamItem::read(addr_homed_at(1), 0),
            StreamItem::read(addr_homed_at(2), 0),
        ]]);
        let r = sim.run(&w);
        let h = r.histogram.unwrap();
        assert_eq!(h.total_misses(), 2);
        assert_eq!(h.total_ctocs(), 0);
    }

    #[test]
    fn deterministic() {
        let w = dresar_workloads::commercial::tpcc(16, 20_000, 42);
        let a = TraceSimulator::new(cfg(true)).run(&w);
        let b = TraceSimulator::new(cfg(true)).run(&w);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.exec_cycles, b.exec_cycles);
    }
}
