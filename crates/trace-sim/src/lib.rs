//! # dresar-trace-sim
//!
//! The trace-driven CC-NUMA simulator of the paper's §5.1 / Table 3, used
//! for the commercial workloads (TPC-C, TPC-D).
//!
//! Model, following the paper exactly:
//! * one single-issue processor per node with a single 4-way set-
//!   associative 2 MB cache;
//! * the MSI cache protocol and the full-map directory protocol;
//! * release consistency approximated by treating every write as a cache
//!   hit for *timing* (writes still drive all coherence state transitions,
//!   including installing switch-directory entries along the ownership
//!   reply path);
//! * constant service latencies for every read-miss class (Table 3),
//!   including the 200-cycle switch-directory-hit service time;
//! * a switch directory in every switch of the BMIN, snooped by remote
//!   requests along their unique path (local accesses do not enter the
//!   network).
//!
//! Transactions complete atomically in trace order (round-robin across
//! processors), so the simulator measures *classification* — which reads
//! are clean, home-CtoC, or switch-served — and weighs them with the
//! constant latencies. That is precisely the paper's methodology for
//! Figures 1, 2 and the commercial columns of Figures 8–11.

#![warn(missing_docs)]

pub mod sim;

pub use sim::{TraceReport, TraceSimulator};
