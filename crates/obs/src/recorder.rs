//! Always-on flight recorder: a bounded ring of compact event records.
//!
//! The recorder is the postmortem counterpart of the tracer. Where the
//! tracer serializes every event into a (large) Perfetto document and is
//! therefore opt-in, the flight recorder keeps only the *last*
//! [`FlightRecorder::capacity`] events as fixed-size binary records — cheap
//! enough to leave armed on every run — and renders them to JSON only when
//! something goes wrong: a watchdog trip, a failed coherence audit, or a
//! fault-injection anomaly. Because the simulator is deterministic, the
//! dump is too: the same seed and fault plan reproduce the same ring,
//! byte for byte, so a postmortem from production is replayable locally.
//!
//! Records deliberately capture the *coherence* narrative (message sends,
//! switch sinks, deliveries, SD outcomes, NAKs and read milestones), not
//! per-cycle resource telemetry: the question a dump answers is "what were
//! the last N protocol steps before the wreck", not "what was the load".

use crate::{Probe, SdProbeEvent, ServicePoint, SwitchLoc};
use dresar_stats::ReadClass;
use dresar_types::msg::{Endpoint, Message, MsgType};
use dresar_types::{BlockAddr, Cycle, JsonValue, NodeId, ToJson};

/// Default ring capacity: enough to cover several thousand protocol steps
/// leading up to an anomaly while keeping the ring under ~256 KiB.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// What a record describes. The discriminant is the wire/JSON code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum RecordKind {
    MsgSend = 0,
    MsgSink = 1,
    MsgDeliver = 2,
    SdEvent = 3,
    Nak = 4,
    ReadIssue = 5,
    ReadRetry = 6,
    ReadServiceArrive = 7,
    ReadServiceDone = 8,
    ReadComplete = 9,
}

impl RecordKind {
    fn label(self) -> &'static str {
        match self {
            RecordKind::MsgSend => "send",
            RecordKind::MsgSink => "sink",
            RecordKind::MsgDeliver => "deliver",
            RecordKind::SdEvent => "sd",
            RecordKind::Nak => "nak",
            RecordKind::ReadIssue => "issue",
            RecordKind::ReadRetry => "retry",
            RecordKind::ReadServiceArrive => "svc_arrive",
            RecordKind::ReadServiceDone => "svc_done",
            RecordKind::ReadComplete => "complete",
        }
    }
}

/// One fixed-size ring record. `loc` encodes an [`Endpoint`] or switch
/// (see [`encode_endpoint`]); `aux` is kind-specific detail (message id,
/// SD outcome code, latency, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Record {
    t: Cycle,
    kind: RecordKind,
    loc: u64,
    block: u64,
    txn: u64,
    aux: u64,
}

/// Packs an endpoint into one word: tag in bits 32.. (0 = proc, 1 = mem,
/// 2 = switch), payload below.
fn encode_endpoint(ep: Endpoint) -> u64 {
    match ep {
        Endpoint::Proc(n) => u64::from(n),
        Endpoint::Mem(n) => (1 << 32) | u64::from(n),
        Endpoint::Switch { stage, index } => {
            (2 << 32) | (u64::from(stage) << 16) | u64::from(index)
        }
    }
}

fn encode_switch(sw: SwitchLoc) -> u64 {
    encode_endpoint(Endpoint::Switch { stage: sw.stage, index: sw.index })
}

/// Stable small code for a message type (Table 1 order first).
fn msg_code(kind: MsgType) -> u64 {
    match kind {
        MsgType::ReadRequest => 0,
        MsgType::WriteRequest => 1,
        MsgType::WriteReply => 2,
        MsgType::CtoCRequest => 3,
        MsgType::CopyBack => 4,
        MsgType::WriteBack => 5,
        MsgType::Retry => 6,
        MsgType::ReadReply => 7,
        MsgType::CtoCData => 8,
        MsgType::Invalidate => 9,
        MsgType::InvalAck => 10,
        MsgType::WriteBackAck => 11,
    }
}

/// Stable small code for an SD snoop outcome.
fn sd_code(ev: SdProbeEvent) -> u64 {
    match ev {
        SdProbeEvent::Insert => 0,
        SdProbeEvent::InsertBlocked => 1,
        SdProbeEvent::Evict => 2,
        SdProbeEvent::ReadHit { .. } => 3,
        SdProbeEvent::TransientNak { .. } => 4,
        SdProbeEvent::ReaderAccumulated { .. } => 5,
        SdProbeEvent::Invalidate => 6,
        SdProbeEvent::WriteNak { .. } => 7,
        SdProbeEvent::CopybackMarked { .. } => 8,
        SdProbeEvent::WritebackServed { .. } => 9,
    }
}

/// The fourth observer: a bounded ring buffer of [`Record`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Vec<Record>,
    capacity: usize,
    /// Index the next record overwrites once the ring is full.
    head: usize,
    /// Records ever pushed (so a dump reports how many were dropped).
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder { ring: Vec::with_capacity(capacity), capacity, head: 0, total: 0 }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn push(&mut self, r: Record) {
        self.total += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(r);
        } else {
            self.ring[self.head] = r;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Finalizes into a dump with records in oldest-first order.
    pub fn finish(self) -> FlightDump {
        let FlightRecorder { mut ring, capacity, head, total } = self;
        ring.rotate_left(head);
        FlightDump { capacity, total, records: ring }
    }
}

impl Probe for FlightRecorder {
    #[inline]
    fn msg_send(&mut self, t: Cycle, msg: &Message) {
        self.push(Record {
            t,
            kind: RecordKind::MsgSend,
            loc: encode_endpoint(msg.src),
            block: msg.block.0,
            txn: msg.txn,
            aux: msg_code(msg.kind),
        });
    }

    #[inline]
    fn msg_sink(&mut self, t: Cycle, msg: &Message, sw: SwitchLoc) {
        self.push(Record {
            t,
            kind: RecordKind::MsgSink,
            loc: encode_switch(sw),
            block: msg.block.0,
            txn: msg.txn,
            aux: msg_code(msg.kind),
        });
    }

    #[inline]
    fn msg_deliver(&mut self, t: Cycle, msg: &Message) {
        self.push(Record {
            t,
            kind: RecordKind::MsgDeliver,
            loc: encode_endpoint(msg.dst),
            block: msg.block.0,
            txn: msg.txn,
            aux: msg_code(msg.kind),
        });
    }

    #[inline]
    fn sd_event(&mut self, t: Cycle, sw: SwitchLoc, block: BlockAddr, ev: SdProbeEvent) {
        self.push(Record {
            t,
            kind: RecordKind::SdEvent,
            loc: encode_switch(sw),
            block: block.0,
            txn: 0,
            aux: sd_code(ev),
        });
    }

    #[inline]
    fn nak_received(&mut self, t: Cycle, node: NodeId, block: BlockAddr) {
        self.push(Record {
            t,
            kind: RecordKind::Nak,
            loc: u64::from(node),
            block: block.0,
            txn: 0,
            aux: 0,
        });
    }

    #[inline]
    fn read_issue(&mut self, node: NodeId, block: BlockAddr, t0: Cycle, inject: Cycle, txn: u64) {
        self.push(Record {
            t: t0,
            kind: RecordKind::ReadIssue,
            loc: u64::from(node),
            block: block.0,
            txn,
            aux: inject,
        });
    }

    #[inline]
    fn read_retry(&mut self, node: NodeId, block: BlockAddr, t: Cycle, txn: u64) {
        self.push(Record {
            t,
            kind: RecordKind::ReadRetry,
            loc: u64::from(node),
            block: block.0,
            txn,
            aux: 0,
        });
    }

    #[inline]
    fn read_service_arrive(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        at: ServicePoint,
        t: Cycle,
        txn: u64,
    ) {
        let loc = match at {
            ServicePoint::Home(h) => (1 << 32) | u64::from(h),
            ServicePoint::Switch(sw) => encode_switch(sw),
        };
        self.push(Record {
            t,
            kind: RecordKind::ReadServiceArrive,
            loc,
            block: block.0,
            txn,
            aux: u64::from(node),
        });
    }

    #[inline]
    fn read_service_done(&mut self, node: NodeId, block: BlockAddr, t: Cycle, txn: u64) {
        self.push(Record {
            t,
            kind: RecordKind::ReadServiceDone,
            loc: u64::from(node),
            block: block.0,
            txn,
            aux: 0,
        });
    }

    #[inline]
    fn read_complete(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        class: ReadClass,
        latency: Cycle,
        t: Cycle,
        txn: u64,
    ) {
        self.push(Record {
            t,
            kind: RecordKind::ReadComplete,
            loc: u64::from(node),
            block: block.0,
            txn,
            aux: (latency << 2) | crate::class_index(class) as u64,
        });
    }
}

/// A finalized flight-recorder dump: the last `records.len()` of `total`
/// recorded events, oldest first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightDump {
    /// Ring capacity the recorder ran with.
    pub capacity: usize,
    /// Events recorded over the whole run (>= records kept).
    pub total: u64,
    records: Vec<Record>,
}

impl FlightDump {
    /// Number of records retained in the dump.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dump holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl ToJson for FlightDump {
    fn to_json(&self) -> JsonValue {
        // Each record serializes as a compact fixed-shape array:
        // [t, kind, loc, block, txn, aux].
        let records: Vec<JsonValue> = self
            .records
            .iter()
            .map(|r| {
                JsonValue::Arr(vec![
                    r.t.to_json(),
                    JsonValue::Str(r.kind.label().to_string()),
                    r.loc.to_json(),
                    r.block.to_json(),
                    r.txn.to_json(),
                    r.aux.to_json(),
                ])
            })
            .collect();
        JsonValue::obj()
            .field("capacity", self.capacity as u64)
            .field("total", self.total)
            .field("dropped", self.total - self.records.len() as u64)
            .field("records", records)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(r: &mut FlightRecorder, n: u64) {
        for i in 0..n {
            r.read_issue((i % 16) as NodeId, BlockAddr(i), i * 10, i * 10 + 3, i + 1);
        }
    }

    #[test]
    fn ring_keeps_the_newest_records_after_wraparound() {
        let mut r = FlightRecorder::new(8);
        feed(&mut r, 20);
        let dump = r.finish();
        assert_eq!(dump.len(), 8);
        assert_eq!(dump.total, 20);
        // Oldest-first: records 12..20 survive (txn 13..=20).
        let txns: Vec<u64> = dump.records.iter().map(|rec| rec.txn).collect();
        assert_eq!(txns, (13..=20).collect::<Vec<_>>());
    }

    #[test]
    fn dump_before_wraparound_keeps_everything_in_order() {
        let mut r = FlightRecorder::new(64);
        feed(&mut r, 5);
        let dump = r.finish();
        assert_eq!(dump.len(), 5);
        assert_eq!(dump.total, 5);
        assert_eq!(dump.to_json().get("dropped").and_then(JsonValue::as_u64), Some(0));
        let txns: Vec<u64> = dump.records.iter().map(|rec| rec.txn).collect();
        assert_eq!(txns, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn identical_event_streams_dump_byte_identically() {
        let run = || {
            let mut r = FlightRecorder::new(16);
            feed(&mut r, 40);
            r.sd_event(
                7,
                SwitchLoc { stage: 1, index: 2, linear: 6 },
                BlockAddr(9),
                SdProbeEvent::Insert,
            );
            r.nak_received(11, 3, BlockAddr(5));
            r.finish().to_json().dump()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = FlightRecorder::new(0);
        feed(&mut r, 3);
        let dump = r.finish();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump.total, 3);
    }

    #[test]
    fn dump_json_has_fixed_shape_records() {
        let mut r = FlightRecorder::new(4);
        r.msg_send(
            5,
            &dresar_types::msg::Message::new(
                1,
                MsgType::ReadRequest,
                BlockAddr(2),
                Endpoint::Proc(0),
                Endpoint::Mem(3),
                0,
                5,
            )
            .with_txn(42),
        );
        let dump = r.finish();
        let json = dump.to_json();
        let recs = json.get("records").and_then(JsonValue::as_arr).expect("records array");
        assert_eq!(recs.len(), 1);
        let rec = recs[0].as_arr().expect("record is an array");
        assert_eq!(rec.len(), 6);
        assert_eq!(rec[1].as_str(), Some("send"));
        assert_eq!(rec[4].as_u64(), Some(42));
    }
}
