//! Per-phase read-miss latency breakdown.
//!
//! Every read miss is tracked from issue to fill through a small set of
//! milestones — stall begin, network injection, last retry re-issue,
//! service-point arrival (home or switch-directory sink), service
//! completion, data arrival — and the consecutive differences are
//! accumulated as phases. Because the milestones are clamped monotone and
//! telescope, the phase sums of a completed read add up to *exactly* the
//! latency recorded in `ReadStats.latency_cycles`, which the tier-1
//! observability test asserts.

use crate::{class_index, MachineShape, Probe, ServicePoint, CLASS_LABELS};
use dresar_stats::ReadClass;
use dresar_types::{BlockAddr, Cycle, JsonValue, NodeId, ToJson};
use std::collections::HashMap;

/// Phase labels, in accumulation order.
pub const PHASES: [&str; 5] =
    ["l2_miss", "retry_wait", "request_network", "service", "data_return"];

/// Number of log2 latency buckets (bucket `k` holds latencies in
/// `[2^(k-1), 2^k)`; bucket 0 holds latency 0).
pub const HIST_BUCKETS: usize = 40;

/// Accumulated phase totals for one read class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSums {
    /// Completed reads of this class.
    pub count: u64,
    /// Total issue-to-data latency (equals the sum of `phases`).
    pub total_latency: u64,
    /// Per-phase cycle totals, indexed like [`PHASES`].
    pub phases: [u64; 5],
    /// Log2-bucketed latency histogram.
    pub hist: [u64; HIST_BUCKETS],
}

impl Default for PhaseSums {
    fn default() -> Self {
        PhaseSums { count: 0, total_latency: 0, phases: [0; 5], hist: [0; HIST_BUCKETS] }
    }
}

/// Inclusive value range of log2 bucket `k`: bucket 0 holds exactly 0,
/// bucket `k >= 1` holds `[2^(k-1), 2^k - 1]`.
fn bucket_bounds(k: usize) -> (f64, f64) {
    if k == 0 {
        (0.0, 0.0)
    } else {
        ((1u64 << (k - 1)) as f64, ((1u64 << k) - 1) as f64)
    }
}

/// Estimated `p`-quantile (`0 < p <= 1`) of a log2-bucketed histogram laid
/// out like [`PhaseSums::hist`] (bucket 0 holds value 0, bucket `k` holds
/// `[2^(k-1), 2^k)`), linearly interpolated inside the matched bucket's
/// value range. Exact whenever the matched bucket is single-valued (values
/// 0 and 1); otherwise the error is bounded by the bucket width. Returns
/// `None` for an empty histogram or `p` outside `(0, 1]`.
///
/// Shared by the per-phase latency breakdown and the serving layer's
/// service-time reporting, so every p50/p95/p99 in the workspace means the
/// same thing.
pub fn log2_percentile(hist: &[u64], p: f64) -> Option<f64> {
    let count: u64 = hist.iter().sum();
    if count == 0 || !(p > 0.0 && p <= 1.0) {
        return None;
    }
    let target = p * count as f64;
    let mut cum = 0.0;
    for (k, &c) in hist.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if cum + c as f64 >= target {
            let (lo, hi) = bucket_bounds(k);
            let frac = (target - cum) / c as f64;
            return Some(lo + frac * (hi - lo));
        }
        cum += c as f64;
    }
    // Float accumulation fell a hair short: clamp to the top bucket.
    let last = hist.iter().rposition(|&c| c > 0)?;
    Some(bucket_bounds(last).1)
}

/// Log2 bucket index for one recorded value, matching the
/// [`log2_percentile`] layout, clamped into `buckets`-wide histograms.
pub fn log2_bucket(value: u64, buckets: usize) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(buckets - 1)
}

impl PhaseSums {
    fn record(&mut self, phases: [u64; 5], latency: u64) {
        self.count += 1;
        self.total_latency += latency;
        for (acc, p) in self.phases.iter_mut().zip(phases) {
            *acc += p;
        }
        self.hist[log2_bucket(latency, HIST_BUCKETS)] += 1;
    }

    /// Estimated `p`-quantile latency (`0 < p <= 1`) from the log2
    /// histogram — see [`log2_percentile`] for the interpolation contract.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        log2_percentile(&self.hist, p)
    }
}

impl ToJson for PhaseSums {
    fn to_json(&self) -> JsonValue {
        let phases = JsonValue::Obj(
            PHASES.iter().zip(self.phases).map(|(n, v)| (n.to_string(), v.to_json())).collect(),
        );
        // Trim trailing empty buckets so the document stays compact.
        let last = self.hist.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        JsonValue::obj()
            .field("count", self.count)
            .field("total_latency", self.total_latency)
            .field("phases", phases)
            .field("latency_hist_log2", self.hist[..last].to_vec())
            .field("p50", self.percentile(0.50))
            .field("p95", self.percentile(0.95))
            .field("p99", self.percentile(0.99))
            .build()
    }
}

/// Per-node completion summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLatency {
    /// Completed read misses issued by this node.
    pub count: u64,
    /// Their total latency.
    pub total_latency: u64,
}

impl ToJson for NodeLatency {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("count", self.count)
            .field("total_latency", self.total_latency)
            .build()
    }
}

/// The finished breakdown attached to the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Per-class sums, indexed by [`class_index`].
    pub classes: [PhaseSums; 3],
    /// Per-requesting-node summaries.
    pub per_node: Vec<NodeLatency>,
    /// Reads sunk at each switch (service point = that switch directory).
    pub per_switch_sinks: Vec<u64>,
    /// Reads that were NAK'd at least once before completing.
    pub retried_reads: u64,
    /// Reads still open when the run ended (never completed with a class —
    /// e.g. upgraded into writes).
    pub unfinished: u64,
}

impl LatencyBreakdown {
    /// Sum of every per-phase total across all classes. Equals
    /// `ReadStats.latency_cycles` for the same run.
    pub fn total_phase_cycles(&self) -> u64 {
        self.classes.iter().map(|c| c.phases.iter().sum::<u64>()).sum()
    }

    /// Completed reads across all classes.
    pub fn total_reads(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }
}

impl ToJson for LatencyBreakdown {
    fn to_json(&self) -> JsonValue {
        let classes = JsonValue::Obj(
            CLASS_LABELS
                .iter()
                .zip(&self.classes)
                .map(|(n, c)| (n.to_string(), c.to_json()))
                .collect(),
        );
        JsonValue::obj()
            .field("classes", classes)
            .field("total_phase_cycles", self.total_phase_cycles())
            .field("total_reads", self.total_reads())
            .field("per_node", self.per_node.to_vec())
            .field("per_switch_sinks", self.per_switch_sinks.to_vec())
            .field("retried_reads", self.retried_reads)
            .field("unfinished", self.unfinished)
            .build()
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenRead {
    t0: Cycle,
    inject: Cycle,
    attempt: Cycle,
    svc_arrive: Option<Cycle>,
    svc_done: Option<Cycle>,
    sunk_at: Option<u16>,
    retried: bool,
}

/// The live observer: keyed by `(node, block)` — unique because each node
/// holds at most one MSHR per block.
#[derive(Debug)]
pub struct LatencyRecorder {
    open: HashMap<(NodeId, u64), OpenRead>,
    out: LatencyBreakdown,
}

impl LatencyRecorder {
    /// Creates a recorder for a machine of `shape`.
    pub fn new(shape: MachineShape) -> Self {
        LatencyRecorder {
            open: HashMap::new(),
            out: LatencyBreakdown {
                per_node: vec![NodeLatency::default(); shape.nodes],
                per_switch_sinks: vec![0; shape.switches],
                ..Default::default()
            },
        }
    }

    /// Finalizes: anything still open is counted as unfinished.
    pub fn finish(mut self) -> LatencyBreakdown {
        self.out.unfinished = self.open.len() as u64;
        self.out
    }
}

impl Probe for LatencyRecorder {
    fn read_issue(&mut self, node: NodeId, block: BlockAddr, t0: Cycle, inject: Cycle, _txn: u64) {
        self.open.insert(
            (node, block.0),
            OpenRead {
                t0,
                inject,
                attempt: inject,
                svc_arrive: None,
                svc_done: None,
                sunk_at: None,
                retried: false,
            },
        );
    }

    fn read_retry(&mut self, node: NodeId, block: BlockAddr, t: Cycle, _txn: u64) {
        if let Some(r) = self.open.get_mut(&(node, block.0)) {
            r.attempt = t.max(r.attempt);
            r.svc_arrive = None;
            r.svc_done = None;
            r.sunk_at = None;
            r.retried = true;
        }
    }

    fn read_service_arrive(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        at: ServicePoint,
        t: Cycle,
        _txn: u64,
    ) {
        if let Some(r) = self.open.get_mut(&(node, block.0)) {
            if t >= r.attempt && r.svc_arrive.is_none() {
                r.svc_arrive = Some(t);
                r.sunk_at = match at {
                    ServicePoint::Switch(loc) => Some(loc.linear),
                    ServicePoint::Home(_) => None,
                };
            }
        }
    }

    fn read_service_done(&mut self, node: NodeId, block: BlockAddr, t: Cycle, _txn: u64) {
        if let Some(r) = self.open.get_mut(&(node, block.0)) {
            if let Some(a) = r.svc_arrive {
                if t >= a && r.svc_done.is_none() {
                    r.svc_done = Some(t);
                }
            }
        }
    }

    fn read_complete(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        class: ReadClass,
        latency: Cycle,
        t: Cycle,
        _txn: u64,
    ) {
        let Some(r) = self.open.remove(&(node, block.0)) else {
            return;
        };
        // Clamped milestone walk: each phase is the forward distance to the
        // next milestone, so the five phases telescope to exactly t - t0.
        let mut prev = r.t0;
        let mut step = |m: Cycle| {
            let v = m.max(prev);
            let d = v - prev;
            prev = v;
            d
        };
        let l2_miss = step(r.inject);
        let retry_wait = step(r.attempt);
        let (request_network, service) = match (r.svc_arrive, r.svc_done) {
            (Some(a), Some(d)) => {
                let rn = step(a);
                (rn, step(d))
            }
            (Some(a), None) => (step(a), 0),
            _ => (0, 0),
        };
        let data_return = step(t);
        debug_assert_eq!(
            l2_miss + retry_wait + request_network + service + data_return,
            t.saturating_sub(r.t0)
        );
        // `latency` is what ReadStats recorded (t - issued_at with the same
        // t0/t); use it directly so the sums match by construction.
        let _ = latency;
        self.out.classes[class_index(class)].record(
            [l2_miss, retry_wait, request_network, service, data_return],
            t.saturating_sub(r.t0),
        );
        let n = &mut self.out.per_node[node as usize];
        n.count += 1;
        n.total_latency += t.saturating_sub(r.t0);
        if let Some(sw) = r.sunk_at {
            if let Some(slot) = self.out.per_switch_sinks.get_mut(sw as usize) {
                *slot += 1;
            }
        }
        if r.retried {
            self.out.retried_reads += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchLoc;

    fn shape() -> MachineShape {
        MachineShape { nodes: 4, switches: 4 }
    }

    const B: BlockAddr = BlockAddr(7);

    #[test]
    fn simple_read_phases_telescope() {
        let mut r = LatencyRecorder::new(shape());
        r.read_issue(1, B, 100, 110, 1);
        r.read_service_arrive(1, B, ServicePoint::Home(2), 150, 1);
        r.read_service_done(1, B, 190, 1);
        r.read_complete(1, B, ReadClass::CleanMemory, 140, 240, 1);
        let out = r.finish();
        let c = out.classes[0];
        assert_eq!(c.count, 1);
        assert_eq!(c.phases, [10, 0, 40, 40, 50]);
        assert_eq!(c.total_latency, 140);
        assert_eq!(out.total_phase_cycles(), 140);
        assert_eq!(out.per_node[1].count, 1);
    }

    #[test]
    fn retry_resets_service_milestones() {
        let mut r = LatencyRecorder::new(shape());
        r.read_issue(0, B, 0, 10, 1);
        r.read_service_arrive(0, B, ServicePoint::Home(1), 40, 1);
        // NAK'd; reissued at 100.
        r.read_retry(0, B, 100, 1);
        r.read_service_arrive(0, B, ServicePoint::Home(1), 130, 1);
        r.read_service_done(0, B, 160, 1);
        r.read_complete(0, B, ReadClass::CleanMemory, 200, 200, 1);
        let out = r.finish();
        let c = out.classes[0];
        assert_eq!(c.phases, [10, 90, 30, 30, 40]);
        assert_eq!(c.total_latency, 200);
        assert_eq!(out.retried_reads, 1);
    }

    #[test]
    fn switch_sink_counts_per_switch_and_has_no_service_phase() {
        let mut r = LatencyRecorder::new(shape());
        r.read_issue(3, B, 0, 5, 1);
        let loc = SwitchLoc { stage: 1, index: 0, linear: 2 };
        r.read_service_arrive(3, B, ServicePoint::Switch(loc), 25, 1);
        r.read_complete(3, B, ReadClass::DirtyCtoCSwitch, 65, 65, 1);
        let out = r.finish();
        let c = out.classes[2];
        assert_eq!(c.phases, [5, 0, 20, 0, 40]);
        assert_eq!(out.per_switch_sinks, vec![0, 0, 1, 0]);
    }

    #[test]
    fn unfinished_reads_are_counted() {
        let mut r = LatencyRecorder::new(shape());
        r.read_issue(0, B, 0, 5, 1);
        let out = r.finish();
        assert_eq!(out.unfinished, 1);
        assert_eq!(out.total_reads(), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = PhaseSums::default();
        s.record([0; 5], 0);
        s.record([0; 5], 1);
        s.record([0; 5], 2);
        s.record([0; 5], 3);
        s.record([0; 5], 1024);
        assert_eq!(s.hist[0], 1, "latency 0");
        assert_eq!(s.hist[1], 1, "latency 1");
        assert_eq!(s.hist[2], 2, "latencies 2..4");
        assert_eq!(s.hist[11], 1, "latency 1024");
    }

    /// Percentiles are exact when every sample lands in a single-valued
    /// bucket (latencies 0 and 1 have their own buckets).
    #[test]
    fn percentiles_exact_on_single_valued_buckets() {
        let mut s = PhaseSums::default();
        for _ in 0..100 {
            s.record([0; 5], 0);
        }
        assert_eq!(s.percentile(0.50), Some(0.0));
        assert_eq!(s.percentile(0.99), Some(0.0));

        let mut s = PhaseSums::default();
        for _ in 0..90 {
            s.record([0; 5], 1);
        }
        for _ in 0..10 {
            s.record([0; 5], 1024);
        }
        // p50 and p90 fall wholly inside the latency-1 bucket: exact.
        assert_eq!(s.percentile(0.50), Some(1.0));
        assert_eq!(s.percentile(0.90), Some(1.0));
        // p95 falls in the [1024, 2047] bucket; the estimate must stay
        // inside that bucket's value range.
        let p95 = s.percentile(0.95).unwrap();
        assert!((1024.0..=2047.0).contains(&p95), "p95 = {p95}");
    }

    /// On a distribution spread across one multi-valued bucket, the
    /// interpolation error is bounded by the bucket width.
    #[test]
    fn percentile_interpolates_within_bucket() {
        let mut s = PhaseSums::default();
        // 50x latency 2 and 50x latency 3 share log2 bucket 2 ([2, 3]).
        for _ in 0..50 {
            s.record([0; 5], 2);
        }
        for _ in 0..50 {
            s.record([0; 5], 3);
        }
        let p50 = s.percentile(0.50).unwrap();
        assert!((p50 - 2.5).abs() < 1e-9, "midpoint of the [2,3] range, got {p50}");
        let p99 = s.percentile(0.99).unwrap();
        assert!((2.0..=3.0).contains(&p99));
        // p = 1.0 reaches the bucket's upper edge.
        assert_eq!(s.percentile(1.0), Some(3.0));
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = PhaseSums::default();
        assert_eq!(empty.percentile(0.5), None, "no samples");
        let mut s = PhaseSums::default();
        s.record([0; 5], 7);
        assert_eq!(s.percentile(0.0), None, "p=0 rejected");
        assert_eq!(s.percentile(1.5), None, "p>1 rejected");
        // A single sample: any valid p lands in its bucket ([4, 7]).
        let v = s.percentile(0.5).unwrap();
        assert!((4.0..=7.0).contains(&v));
    }

    /// Values past the histogram's range clamp into the top bucket rather
    /// than indexing out of bounds, and a distribution entirely in that
    /// bucket still yields in-range percentiles.
    #[test]
    fn all_mass_in_top_bucket_clamps_and_stays_in_range() {
        assert_eq!(log2_bucket(0, HIST_BUCKETS), 0);
        assert_eq!(log2_bucket(1, HIST_BUCKETS), 1);
        // 2^39 and u64::MAX both exceed a 40-bucket histogram: clamped.
        assert_eq!(log2_bucket(1 << 39, HIST_BUCKETS), HIST_BUCKETS - 1);
        assert_eq!(log2_bucket(u64::MAX, HIST_BUCKETS), HIST_BUCKETS - 1);

        // (1 << 60, not u64::MAX: `total_latency` sums the raw samples.)
        let mut s = PhaseSums::default();
        for _ in 0..10 {
            s.record([0; 5], 1 << 60);
        }
        assert_eq!(s.hist[HIST_BUCKETS - 1], 10, "every sample in the top bucket");
        let (lo, hi) = bucket_bounds(HIST_BUCKETS - 1);
        for p in [0.01, 0.50, 0.99, 1.0] {
            let v = s.percentile(p).unwrap();
            assert!((lo..=hi).contains(&v), "p{p}: {v} outside top bucket [{lo}, {hi}]");
        }
    }

    /// A degenerate single-valued distribution collapses p50 and p99 to
    /// the same bucket — exactly equal when the bucket holds one value,
    /// and never further apart than the bucket width otherwise.
    #[test]
    fn single_valued_distribution_collapses_p50_and_p99() {
        // One sample in the [4, 7] bucket: every percentile interpolates
        // inside that bucket's range, never outside it.
        let one = vec![0, 0, 0, 1];
        let p50 = log2_percentile(&one, 0.50).unwrap();
        let p99 = log2_percentile(&one, 0.99).unwrap();
        assert!((4.0..=7.0).contains(&p50) && (4.0..=7.0).contains(&p99), "{p50} {p99}");
        // Many samples of value 1 (a single-valued bucket): exactly equal,
        // and exactly the value.
        let mut s = PhaseSums::default();
        for _ in 0..1000 {
            s.record([0; 5], 1);
        }
        assert_eq!(s.percentile(0.50), Some(1.0));
        assert_eq!(s.percentile(0.50), s.percentile(0.99));
    }

    #[test]
    fn json_includes_percentiles() {
        let mut s = PhaseSums::default();
        for _ in 0..10 {
            s.record([0; 5], 1);
        }
        let j = s.to_json();
        assert_eq!(j.get("p50").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(j.get("p99").and_then(JsonValue::as_f64), Some(1.0));
        let empty = PhaseSums::default();
        assert_eq!(empty.to_json().get("p50"), Some(&JsonValue::Null));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = LatencyRecorder::new(shape());
        r.read_issue(1, B, 0, 10, 1);
        r.read_service_arrive(1, B, ServicePoint::Home(0), 20, 1);
        r.read_service_done(1, B, 30, 1);
        r.read_complete(1, B, ReadClass::CleanMemory, 50, 50, 1);
        let j = r.finish().to_json();
        let classes = j.get("classes").expect("classes present");
        let clean = classes.get("clean_memory").expect("class key");
        assert_eq!(clean.get("count").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(j.get("total_phase_cycles").and_then(JsonValue::as_u64), Some(50));
    }
}
