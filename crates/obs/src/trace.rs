//! Chrome trace-event (`about:tracing` / Perfetto) JSON tracer.
//!
//! Emits the JSON-array flavour of the trace-event format: one event object
//! per line, loadable directly into `chrome://tracing` or
//! [ui.perfetto.dev](https://ui.perfetto.dev). Processors are pid 0 (one
//! thread per node), home directories pid 1, switches pid 2. Read misses
//! appear as async spans (`ph: "b"`/`"e"`) keyed by a per-transaction id;
//! message sends/sinks/deliveries, switch-directory outcomes, home FSM
//! transitions and NAKs are instant events; home service occupancy is a
//! complete (`ph: "X"`) slice.
//!
//! Read-miss spans are keyed by the *transaction id* the simulator stamps
//! on every message sent on a miss's behalf, and each span is stitched to
//! its service point by Perfetto flow events (`ph: "s"`/`"t"`/`"f"`): an
//! arrow leaves the issuing processor, steps through the home directory or
//! the switch directory that sank the read, and lands back on the
//! processor at completion — one causal tree per miss, across pids.
//!
//! Timestamps are simulation cycles written as integer `ts` values. The
//! output is fully deterministic: two identical runs produce byte-identical
//! documents (asserted by the tier-1 observability tests).

use crate::class_index;
use crate::{HomeTransition, Probe, SdProbeEvent, ServicePoint, SwitchLoc, CLASS_LABELS};
use dresar_stats::ReadClass;
use dresar_types::msg::{Endpoint, Message, MsgType};
use dresar_types::{BlockAddr, Cycle, NodeId};
use std::collections::HashMap;

const PID_PROC: u32 = 0;
const PID_HOME: u32 = 1;
const PID_SWITCH: u32 = 2;

fn endpoint_pid_tid(ep: Endpoint) -> (u32, u64) {
    match ep {
        Endpoint::Proc(p) => (PID_PROC, p as u64),
        Endpoint::Mem(h) => (PID_HOME, h as u64),
        Endpoint::Switch { stage, index } => (PID_SWITCH, stage as u64 * 256 + index as u64),
    }
}

/// The live tracer.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Vec<String>,
    open_reads: HashMap<(NodeId, u64), u64>,
    next_span: u64,
}

impl Tracer {
    /// Creates a tracer with the process-name metadata pre-recorded.
    pub fn new() -> Self {
        let mut t = Tracer::default();
        for (pid, name) in
            [(PID_PROC, "processors"), (PID_HOME, "home directories"), (PID_SWITCH, "switches")]
        {
            t.events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        t
    }

    fn instant(&mut self, name: &str, pid: u32, tid: u64, ts: Cycle, args: String) {
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}"
        ));
    }

    /// One flow event (`ph` is `"s"`, `"t"` or `"f"`) on the given track,
    /// keyed by the transaction id so Perfetto draws the causal arrows.
    fn flow(&mut self, ph: char, id: u64, pid: u32, tid: u64, ts: Cycle) {
        let bind = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
        self.events.push(format!(
            "{{\"name\":\"txn\",\"cat\":\"txn\",\"ph\":\"{ph}\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}{bind}}}"
        ));
    }

    /// Finalizes into one JSON document (an array, one event per line).
    pub fn finish(self) -> String {
        let mut out = String::from("[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]\n");
        out
    }
}

impl Probe for Tracer {
    fn msg_send(&mut self, t: Cycle, msg: &Message) {
        let (pid, tid) = endpoint_pid_tid(msg.src);
        self.instant(
            &format!("send:{:?}", msg.kind),
            pid,
            tid,
            t,
            format!(
                "\"block\":{},\"msg\":{},\"req\":{},\"txn\":{}",
                msg.block.0, msg.id, msg.requester, msg.txn
            ),
        );
    }

    fn msg_sink(&mut self, t: Cycle, msg: &Message, sw: SwitchLoc) {
        self.instant(
            &format!("sink:{:?}", msg.kind),
            PID_SWITCH,
            sw.linear as u64,
            t,
            format!("\"block\":{},\"msg\":{},\"txn\":{}", msg.block.0, msg.id, msg.txn),
        );
    }

    fn msg_deliver(&mut self, t: Cycle, msg: &Message) {
        let (pid, tid) = endpoint_pid_tid(msg.dst);
        self.instant(
            &format!("deliver:{:?}", msg.kind),
            pid,
            tid,
            t,
            format!("\"block\":{},\"msg\":{},\"txn\":{}", msg.block.0, msg.id, msg.txn),
        );
    }

    fn sd_event(&mut self, t: Cycle, sw: SwitchLoc, block: BlockAddr, ev: SdProbeEvent) {
        self.instant(ev.label(), PID_SWITCH, sw.linear as u64, t, format!("\"block\":{}", block.0));
    }

    fn home_fsm(&mut self, t: Cycle, home: NodeId, block: BlockAddr, tr: HomeTransition) {
        self.instant(
            &format!("fsm:{}", tr.req.label()),
            PID_HOME,
            home as u64,
            t,
            format!(
                "\"block\":{},\"from\":\"{}{}\",\"to\":\"{}{}\",\"nak\":{},\"queued\":{}",
                block.0,
                tr.from.label(),
                if tr.from_busy { "*" } else { "" },
                tr.to.label(),
                if tr.to_busy { "*" } else { "" },
                tr.nak,
                tr.queued
            ),
        );
    }

    fn home_service(
        &mut self,
        home: NodeId,
        block: BlockAddr,
        kind: MsgType,
        _arrive: Cycle,
        start: Cycle,
        done: Cycle,
    ) {
        let dur = done.saturating_sub(start);
        self.events.push(format!(
            "{{\"name\":\"home_service\",\"ph\":\"X\",\"pid\":{PID_HOME},\"tid\":{home},\"ts\":{start},\"dur\":{dur},\"args\":{{\"block\":{},\"kind\":\"{}\"}}}}",
            block.0,
            kind.label()
        ));
    }

    fn nak_received(&mut self, t: Cycle, node: NodeId, block: BlockAddr) {
        self.instant("nak", PID_PROC, node as u64, t, format!("\"block\":{}", block.0));
    }

    fn read_issue(&mut self, node: NodeId, block: BlockAddr, t0: Cycle, _inject: Cycle, txn: u64) {
        // The simulator stamps every real miss with a nonzero txn; the
        // counter fallback keeps hand-driven streams (unit tests) working.
        let id = if txn != 0 {
            txn
        } else {
            self.next_span += 1;
            self.next_span
        };
        self.open_reads.insert((node, block.0), id);
        self.events.push(format!(
            "{{\"name\":\"read_miss\",\"cat\":\"read\",\"ph\":\"b\",\"id\":{id},\"pid\":{PID_PROC},\"tid\":{node},\"ts\":{t0},\"args\":{{\"block\":{},\"txn\":{txn}}}}}",
            block.0
        ));
        self.flow('s', id, PID_PROC, node as u64, t0);
    }

    fn read_retry(&mut self, node: NodeId, block: BlockAddr, t: Cycle, txn: u64) {
        self.instant(
            "read_retry",
            PID_PROC,
            node as u64,
            t,
            format!("\"block\":{},\"txn\":{txn}", block.0),
        );
    }

    fn read_service_arrive(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        at: ServicePoint,
        t: Cycle,
        txn: u64,
    ) {
        let (where_, tid) = match at {
            ServicePoint::Home(h) => ("home", h as u64),
            ServicePoint::Switch(sw) => ("switch", sw.linear as u64),
        };
        let pid = if matches!(at, ServicePoint::Home(_)) { PID_HOME } else { PID_SWITCH };
        self.instant(
            "read_service",
            pid,
            tid,
            t,
            format!("\"block\":{},\"node\":{node},\"at\":\"{where_}\",\"txn\":{txn}", block.0),
        );
        if let Some(&id) = self.open_reads.get(&(node, block.0)) {
            self.flow('t', id, pid, tid, t);
        }
    }

    fn read_complete(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        class: ReadClass,
        latency: Cycle,
        t: Cycle,
        txn: u64,
    ) {
        let Some(id) = self.open_reads.remove(&(node, block.0)) else {
            return;
        };
        self.events.push(format!(
            "{{\"name\":\"read_miss\",\"cat\":\"read\",\"ph\":\"e\",\"id\":{id},\"pid\":{PID_PROC},\"tid\":{node},\"ts\":{t},\"args\":{{\"block\":{},\"class\":\"{}\",\"latency\":{latency},\"txn\":{txn}}}}}",
            block.0,
            CLASS_LABELS[class_index(class)]
        ));
        self.flow('f', id, PID_PROC, node as u64, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::JsonValue;

    #[test]
    fn trace_is_valid_json_with_required_keys() {
        let mut t = Tracer::new();
        t.read_issue(1, BlockAddr(5), 10, 15, 7);
        t.read_service_arrive(1, BlockAddr(5), ServicePoint::Home(0), 40, 7);
        t.home_service(0, BlockAddr(5), MsgType::ReadRequest, 40, 42, 90);
        t.read_complete(1, BlockAddr(5), ReadClass::CleanMemory, 100, 110, 7);
        let doc = t.finish();
        let parsed = JsonValue::parse(&doc).expect("trace parses as JSON");
        let events = parsed.as_arr().expect("array form");
        assert!(events.len() >= 6, "metadata + 4 events");
        for e in events {
            assert!(e.get("name").is_some(), "every event has a name");
            assert!(e.get("ph").is_some(), "every event has a phase");
            assert!(e.get("pid").is_some(), "every event has a pid");
        }
    }

    #[test]
    fn async_span_ids_pair_up() {
        let mut t = Tracer::new();
        t.read_issue(2, BlockAddr(9), 0, 5, 31);
        t.read_complete(2, BlockAddr(9), ReadClass::DirtyCtoCSwitch, 50, 50, 31);
        let doc = t.finish();
        let parsed = JsonValue::parse(&doc).unwrap();
        let events = parsed.as_arr().unwrap();
        let begin = events.iter().find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("b"));
        let end = events.iter().find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("e"));
        let (b, e) = (begin.expect("begin"), end.expect("end"));
        assert_eq!(
            b.get("id").and_then(JsonValue::as_u64),
            e.get("id").and_then(JsonValue::as_u64)
        );
        assert_eq!(b.get("id").and_then(JsonValue::as_u64), Some(31), "span id is the txn id");
        assert_eq!(
            e.get("args").and_then(|a| a.get("class")).and_then(JsonValue::as_str),
            Some("dirty_ctoc_switch")
        );
    }

    #[test]
    fn flow_events_stitch_issue_service_and_complete_by_txn() {
        let mut t = Tracer::new();
        let sw = SwitchLoc { stage: 1, index: 2, linear: 6 };
        t.read_issue(4, BlockAddr(3), 0, 2, 55);
        t.read_service_arrive(4, BlockAddr(3), ServicePoint::Switch(sw), 20, 55);
        t.read_complete(4, BlockAddr(3), ReadClass::DirtyCtoCSwitch, 44, 44, 55);
        let doc = t.finish();
        let parsed = JsonValue::parse(&doc).unwrap();
        let events = parsed.as_arr().unwrap();
        let flow_ph = |ph: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("cat").and_then(JsonValue::as_str) == Some("txn")
                        && e.get("ph").and_then(JsonValue::as_str) == Some(ph)
                })
                .unwrap_or_else(|| panic!("missing flow event ph={ph}"))
        };
        let (s, step, f) = (flow_ph("s"), flow_ph("t"), flow_ph("f"));
        for ev in [s, step, f] {
            assert_eq!(ev.get("id").and_then(JsonValue::as_u64), Some(55));
        }
        // The arrow starts on the processor, steps through the switch
        // track, and finishes back on the processor.
        assert_eq!(s.get("pid").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(step.get("pid").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(step.get("tid").and_then(JsonValue::as_u64), Some(6));
        assert_eq!(f.get("pid").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(f.get("bp").and_then(JsonValue::as_str), Some("e"));
    }

    #[test]
    fn identical_event_streams_are_byte_identical() {
        let run = || {
            let mut t = Tracer::new();
            t.msg_send(
                3,
                &Message::new(
                    1,
                    dresar_types::msg::MsgType::ReadRequest,
                    BlockAddr(2),
                    Endpoint::Proc(0),
                    Endpoint::Mem(1),
                    0,
                    3,
                ),
            );
            t.nak_received(9, 0, BlockAddr(2));
            t.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn complete_without_issue_is_ignored() {
        let mut t = Tracer::new();
        t.read_complete(0, BlockAddr(1), ReadClass::CleanMemory, 10, 10, 0);
        let doc = t.finish();
        assert!(!doc.contains("\"ph\":\"e\""));
    }
}
