//! Hierarchical component-metrics registry.
//!
//! Every hardware structure in the simulator keeps its own cheap counter
//! struct (`SdStats`, `DirStats`, `HierarchyStats`, ...). This module gives
//! those per-component numbers one deterministic, diffable home: a
//! [`MetricsRegistry`] of flat dotted names (`sd.read_hits`,
//! `engine.queue.peak_depth`) sorted lexicographically, each holding a
//! [`MetricValue`] — a monotone counter, a gauge with a high-water mark, or
//! a log2 histogram.
//!
//! Determinism is the design constraint: two same-seed simulator runs must
//! produce byte-identical registries, so storage is a `BTreeMap` (sorted
//! iteration), serialization goes through the workspace's ordered
//! [`JsonValue`] writer, and nothing host-dependent (timings, RSS) is ever
//! allowed in — host profiling lives in [`crate::hostprof`] and is excluded
//! from baseline comparison. The registry is assembled *after* a run from
//! the component stats structs; it adds zero work to simulation hot loops.

use dresar_types::{FromJson, JsonError, JsonValue, ToJson};
use std::collections::BTreeMap;

/// One recorded metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// An instantaneous level plus its high-water mark.
    Gauge {
        /// Value at snapshot time.
        current: u64,
        /// Largest value observed over the run.
        peak: u64,
    },
    /// A log2-bucketed histogram (bucket counts).
    Hist(Vec<u64>),
}

/// A sorted map of dotted metric names to values.
///
/// Names use `component.sub.metric` convention, e.g. `sd.read_hits`,
/// `home.peak_busy`, `net.link_stall_cycles`. Inserting an existing name
/// overwrites it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.metrics.insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Records a gauge with its high-water mark.
    pub fn gauge(&mut self, name: &str, current: u64, peak: u64) {
        self.metrics.insert(name.to_string(), MetricValue::Gauge { current, peak });
    }

    /// Records a histogram (bucket counts).
    pub fn hist(&mut self, name: &str, buckets: Vec<u64>) {
        self.metrics.insert(name.to_string(), MetricValue::Hist(buckets));
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in lexicographic name order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Flattens every metric to named scalars, the form the baseline gate
    /// compares: a counter contributes `name`; a gauge contributes
    /// `name.current` and `name.peak`; a histogram contributes `name.total`
    /// (its bucket sum — per-bucket drift without a total change is caught
    /// by the byte-identity check on the full document, not the gate).
    pub fn scalars(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.metrics.len());
        for (name, v) in &self.metrics {
            match v {
                MetricValue::Counter(c) => out.push((name.clone(), *c)),
                MetricValue::Gauge { current, peak } => {
                    out.push((format!("{name}.current"), *current));
                    out.push((format!("{name}.peak"), *peak));
                }
                MetricValue::Hist(buckets) => {
                    out.push((format!("{name}.total"), buckets.iter().sum()));
                }
            }
        }
        out
    }

    /// Renders the registry in Prometheus text exposition format (0.0.4).
    ///
    /// Dotted names flatten to underscores. Counters emit one `counter`
    /// sample; gauges emit the current level plus a `<name>_peak` gauge;
    /// log2 histograms emit cumulative `histogram` buckets whose `le`
    /// bounds are each bucket's inclusive upper value (`0, 1, 3, 7, ...,
    /// 2^k - 1`) plus `+Inf` and a `<name>_count` total. Output is
    /// deterministic: sorted names, integer samples only.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.metrics {
            let flat = name.replace('.', "_");
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {flat} counter\n{flat} {c}");
                }
                MetricValue::Gauge { current, peak } => {
                    let _ = writeln!(out, "# TYPE {flat} gauge\n{flat} {current}");
                    let _ = writeln!(out, "# TYPE {flat}_peak gauge\n{flat}_peak {peak}");
                }
                MetricValue::Hist(buckets) => {
                    let _ = writeln!(out, "# TYPE {flat} histogram");
                    let mut cum = 0u64;
                    for (k, &c) in buckets.iter().enumerate() {
                        cum += c;
                        let le = match k {
                            0 => 0,
                            1..=63 => (1u64 << k) - 1,
                            _ => u64::MAX,
                        };
                        let _ = writeln!(out, "{flat}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{flat}_bucket{{le=\"+Inf\"}} {cum}");
                    let _ = writeln!(out, "{flat}_count {cum}");
                }
            }
        }
        out
    }

    /// Scalar-by-scalar comparison against a baseline registry. Returns one
    /// [`MetricDelta`] per differing (or added/removed) scalar, sorted by
    /// name. An empty result means the registries agree exactly.
    pub fn diff(&self, baseline: &MetricsRegistry) -> Vec<MetricDelta> {
        let base: BTreeMap<String, u64> = baseline.scalars().into_iter().collect();
        let cur: BTreeMap<String, u64> = self.scalars().into_iter().collect();
        let mut out = Vec::new();
        for (name, &b) in &base {
            match cur.get(name) {
                Some(&c) if c == b => {}
                Some(&c) => out.push(MetricDelta {
                    name: name.clone(),
                    baseline: Some(b),
                    current: Some(c),
                }),
                None => {
                    out.push(MetricDelta { name: name.clone(), baseline: Some(b), current: None })
                }
            }
        }
        for (name, &c) in &cur {
            if !base.contains_key(name) {
                out.push(MetricDelta { name: name.clone(), baseline: None, current: Some(c) });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// One scalar that differs between a registry and its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDelta {
    /// Flattened scalar name (see [`MetricsRegistry::scalars`]).
    pub name: String,
    /// Baseline value; `None` when the scalar is new.
    pub baseline: Option<u64>,
    /// Current value; `None` when the scalar disappeared.
    pub current: Option<u64>,
}

impl MetricDelta {
    /// Relative change `(current - baseline) / baseline`. Appearing or
    /// disappearing scalars, and changes from a zero baseline, report
    /// infinity — always past any finite tolerance.
    pub fn rel_change(&self) -> f64 {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b > 0 => (c as f64 - b as f64) / b as f64,
            (Some(b), Some(c)) if b == c => 0.0,
            _ => f64::INFINITY,
        }
    }
}

impl ToJson for MetricValue {
    fn to_json(&self) -> JsonValue {
        match self {
            MetricValue::Counter(c) => JsonValue::Num(*c as f64),
            MetricValue::Gauge { current, peak } => {
                JsonValue::obj().field("current", *current).field("peak", *peak).build()
            }
            MetricValue::Hist(buckets) => {
                JsonValue::Arr(buckets.iter().map(|&b| JsonValue::Num(b as f64)).collect())
            }
        }
    }
}

impl FromJson for MetricValue {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Num(_) => {
                Ok(MetricValue::Counter(v.as_u64().ok_or_else(|| {
                    JsonError::new("counter metric must be a non-negative integer")
                })?))
            }
            JsonValue::Obj(_) => Ok(MetricValue::Gauge {
                current: JsonError::want_u64(v, "current")?,
                peak: JsonError::want_u64(v, "peak")?,
            }),
            JsonValue::Arr(items) => {
                let buckets = items
                    .iter()
                    .map(|b| {
                        b.as_u64()
                            .ok_or_else(|| JsonError::new("histogram bucket must be an integer"))
                    })
                    .collect::<Result<Vec<u64>, JsonError>>()?;
                Ok(MetricValue::Hist(buckets))
            }
            _ => Err(JsonError::new("metric must be a number, object or array")),
        }
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> JsonValue {
        // BTreeMap iteration is sorted, so the document is deterministic.
        JsonValue::Obj(self.metrics.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl FromJson for MetricsRegistry {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let JsonValue::Obj(fields) = v else {
            return Err(JsonError::new("metrics registry must be an object"));
        };
        let mut metrics = BTreeMap::new();
        for (k, val) in fields {
            metrics.insert(k.clone(), MetricValue::from_json(val)?);
        }
        Ok(MetricsRegistry { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.counter("sd.read_hits", 42);
        r.gauge("home.busy", 0, 7);
        r.hist("lat.hist", vec![0, 3, 5]);
        r.counter("cache.fills", 9);
        r
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let r = sample();
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["cache.fills", "home.busy", "lat.hist", "sd.read_hits"]);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = sample();
        let dumped = r.to_json().dump();
        let back = MetricsRegistry::from_json(&JsonValue::parse(&dumped).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json().dump(), dumped, "byte-identical re-dump");
    }

    #[test]
    fn scalars_flatten_gauges_and_hists() {
        let s = sample().scalars();
        assert!(s.contains(&("sd.read_hits".to_string(), 42)));
        assert!(s.contains(&("home.busy.current".to_string(), 0)));
        assert!(s.contains(&("home.busy.peak".to_string(), 7)));
        assert!(s.contains(&("lat.hist.total".to_string(), 8)));
    }

    #[test]
    fn diff_empty_for_identical_registries() {
        assert!(sample().diff(&sample()).is_empty());
    }

    #[test]
    fn diff_reports_changed_added_and_removed() {
        let base = sample();
        let mut cur = sample();
        cur.counter("sd.read_hits", 50); // changed
        cur.counter("new.metric", 1); // added
        cur.metrics.remove("cache.fills"); // removed
        let d = cur.diff(&base);
        let names: Vec<&str> = d.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["cache.fills", "new.metric", "sd.read_hits"]);
        let hit = d.iter().find(|x| x.name == "sd.read_hits").unwrap();
        assert_eq!(hit.baseline, Some(42));
        assert_eq!(hit.current, Some(50));
        assert!((hit.rel_change() - (8.0 / 42.0)).abs() < 1e-12);
        assert!(d.iter().find(|x| x.name == "cache.fills").unwrap().rel_change().is_infinite());
    }

    #[test]
    fn prometheus_exposition_covers_every_metric_kind() {
        let text = sample().to_prometheus();
        // Counter: one sample, dotted name flattened.
        assert!(text.contains("# TYPE sd_read_hits counter\nsd_read_hits 42\n"), "{text}");
        // Gauge: current level plus the peak companion.
        assert!(text.contains("# TYPE home_busy gauge\nhome_busy 0\n"), "{text}");
        assert!(text.contains("# TYPE home_busy_peak gauge\nhome_busy_peak 7\n"), "{text}");
        // Histogram [0, 3, 5]: cumulative buckets at le 0, 1, +Inf and a count.
        assert!(text.contains("# TYPE lat_hist histogram"), "{text}");
        assert!(text.contains("lat_hist_bucket{le=\"0\"} 0\n"), "{text}");
        assert!(text.contains("lat_hist_bucket{le=\"1\"} 3\n"), "{text}");
        assert!(text.contains("lat_hist_bucket{le=\"3\"} 8\n"), "{text}");
        assert!(text.contains("lat_hist_bucket{le=\"+Inf\"} 8\n"), "{text}");
        assert!(text.contains("lat_hist_count 8\n"), "{text}");
    }

    #[test]
    fn prometheus_output_is_deterministic_and_sorted() {
        let a = sample().to_prometheus();
        let b = sample().to_prometheus();
        assert_eq!(a, b);
        let cache_pos = a.find("cache_fills").unwrap();
        let sd_pos = a.find("sd_read_hits").unwrap();
        assert!(cache_pos < sd_pos, "sorted emission order");
    }

    #[test]
    fn zero_baseline_changes_are_infinite() {
        let d = MetricDelta { name: "x".into(), baseline: Some(0), current: Some(3) };
        assert!(d.rel_change().is_infinite());
        let same = MetricDelta { name: "x".into(), baseline: Some(0), current: Some(0) };
        assert_eq!(same.rel_change(), 0.0);
    }
}
