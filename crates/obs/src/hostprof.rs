//! Host-side self-profiling: wall-clock per simulation phase, simulated
//! throughput, and peak resident set size.
//!
//! Everything here measures the *host*, not the simulated machine, so none
//! of it is deterministic and none of it may enter the
//! [`crate::metrics::MetricsRegistry`] or any baseline comparison. The
//! `bench_report` binary records a [`HostProfile`] alongside the
//! deterministic counters so regressions in simulator *speed* are visible
//! without contaminating the correctness gate.

use dresar_types::{JsonValue, ToJson};
use std::time::Instant;

/// Wall-clock timing of one named phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase label (e.g. `"build"`, `"run"`, `"report"`).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub wall_seconds: f64,
}

/// Wall-clock timing of one named simulation run inside a phase. Unlike
/// [`PhaseTiming`], runs may execute concurrently: with a parallel sweep
/// the per-run seconds can sum to more than the enclosing phase.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTiming {
    /// Run label (e.g. `"FFT.sd1024"`).
    pub name: String,
    /// Elapsed wall-clock seconds for this run on its worker thread.
    pub wall_seconds: f64,
}

/// A finished profile: per-phase timings plus process-wide peak RSS.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Phases in the order they ran.
    pub phases: Vec<PhaseTiming>,
    /// Per-run wall-clock breakdown (empty when the caller profiles only
    /// at phase granularity).
    pub runs: Vec<RunTiming>,
    /// Total wall-clock seconds from profiler creation to [`HostProfiler::finish`].
    pub total_seconds: f64,
    /// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`);
    /// `None` where the proc filesystem is unavailable.
    pub peak_rss_bytes: Option<u64>,
}

impl HostProfile {
    /// Simulated cycles per wall-clock second over the whole profile.
    pub fn cycles_per_sec(&self, simulated_cycles: u64) -> f64 {
        if self.total_seconds > 0.0 {
            simulated_cycles as f64 / self.total_seconds
        } else {
            0.0
        }
    }
}

impl ToJson for HostProfile {
    fn to_json(&self) -> JsonValue {
        let phases: Vec<JsonValue> = self
            .phases
            .iter()
            .map(|p| {
                JsonValue::obj()
                    .field("name", p.name.as_str())
                    .field("wall_seconds", p.wall_seconds)
                    .build()
            })
            .collect();
        let runs: Vec<JsonValue> = self
            .runs
            .iter()
            .map(|r| {
                JsonValue::obj()
                    .field("name", r.name.as_str())
                    .field("wall_seconds", r.wall_seconds)
                    .build()
            })
            .collect();
        JsonValue::obj()
            .field("phases", JsonValue::Arr(phases))
            .field("runs", JsonValue::Arr(runs))
            .field("total_seconds", self.total_seconds)
            .field("peak_rss_bytes", self.peak_rss_bytes)
            .build()
    }
}

/// Accumulates phase timings; one instance per profiled run.
#[derive(Debug)]
pub struct HostProfiler {
    started: Instant,
    phases: Vec<PhaseTiming>,
    runs: Vec<RunTiming>,
    current: Option<(String, Instant)>,
}

impl Default for HostProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl HostProfiler {
    /// Starts the profiler (total clock begins now).
    pub fn new() -> Self {
        HostProfiler {
            started: Instant::now(),
            phases: Vec::new(),
            runs: Vec::new(),
            current: None,
        }
    }

    /// Records one named run's wall-clock seconds (measured by the caller,
    /// e.g. on a sweep worker thread).
    pub fn run_timing(&mut self, name: &str, wall_seconds: f64) {
        self.runs.push(RunTiming { name: name.to_string(), wall_seconds });
    }

    /// Begins a named phase, closing the previous one if still open.
    pub fn phase(&mut self, name: &str) {
        self.close_current();
        self.current = Some((name.to_string(), Instant::now()));
    }

    fn close_current(&mut self) {
        if let Some((name, at)) = self.current.take() {
            self.phases.push(PhaseTiming { name, wall_seconds: at.elapsed().as_secs_f64() });
        }
    }

    /// Closes any open phase and returns the finished profile.
    pub fn finish(mut self) -> HostProfile {
        self.close_current();
        HostProfile {
            phases: self.phases,
            runs: self.runs,
            total_seconds: self.started.elapsed().as_secs_f64(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// Peak resident set size of this process in bytes, from the `VmHWM` line
/// of `/proc/self/status`. Returns `None` off Linux or when the read fails.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parses the `VmHWM:   123456 kB` line out of a `/proc/<pid>/status` dump.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut p = HostProfiler::new();
        p.phase("build");
        p.phase("run"); // closes "build"
        let prof = p.finish(); // closes "run"
        let names: Vec<&str> = prof.phases.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["build", "run"]);
        assert!(prof.phases.iter().all(|x| x.wall_seconds >= 0.0));
        assert!(prof.total_seconds >= 0.0);
    }

    #[test]
    fn parse_vm_hwm_extracts_kilobytes() {
        let status = "Name:\tfoo\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t 10 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(123456 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tfoo\n"), None);
    }

    #[test]
    fn cycles_per_sec_guards_zero_time() {
        let prof =
            HostProfile { phases: vec![], runs: vec![], total_seconds: 0.0, peak_rss_bytes: None };
        assert_eq!(prof.cycles_per_sec(1000), 0.0);
        let prof =
            HostProfile { phases: vec![], runs: vec![], total_seconds: 2.0, peak_rss_bytes: None };
        assert_eq!(prof.cycles_per_sec(1000), 500.0);
    }

    #[test]
    fn profile_serializes_with_null_rss() {
        let prof = HostProfile {
            phases: vec![PhaseTiming { name: "run".into(), wall_seconds: 1.5 }],
            runs: vec![RunTiming { name: "FFT.base".into(), wall_seconds: 1.0 }],
            total_seconds: 1.5,
            peak_rss_bytes: None,
        };
        let dump = prof.to_json().dump();
        assert!(dump.contains("\"peak_rss_bytes\":null"), "{dump}");
        assert!(dump.contains("\"name\":\"run\""), "{dump}");
        assert!(dump.contains("\"name\":\"FFT.base\""), "{dump}");
    }
}
