//! Topology contention attribution.
//!
//! The [`AttribObserver`] accumulates occupancy and queue wait per physical
//! resource — every directed link (keyed by the interconnect's dense
//! `LinkIndexer` ids, which in the hop model double as the crossbar ports
//! they feed), every switch's directory bank, and every home directory —
//! split by traffic class, plus a coarse per-window busy profile that
//! locates *when* each resource peaked. [`AttribObserver::finish`] distills
//! the accumulators into a deterministic [`Heatmap`]: the per-resource
//! table plus the single critical resource (highest busy-cycle share of
//! the run).
//!
//! Everything here is exact integer accounting over the deterministic
//! event stream, so two runs of the same configuration — serial or inside
//! a parallel sweep — produce byte-identical heatmap JSON.

use crate::{LinkKey, Probe, SdProbeEvent, SwitchLoc};
use dresar_types::msg::{Message, MsgType};
use dresar_types::{BlockAddr, Cycle, JsonValue, NodeId, ToJson};

/// Heatmap payload schema version (bumped on layout changes).
pub const HEATMAP_VERSION: u64 = 1;

/// Default attribution window, cycles.
pub const DEFAULT_ATTRIB_WINDOW: Cycle = 4096;

/// Stable traffic-class labels, indexed by [`traffic_class`].
pub const TRAFFIC_CLASSES: [&str; 5] =
    ["request", "intervention", "reply", "writeback", "invalidation"];

/// Maps a message type onto the five attribution traffic classes:
/// requests (read/write misses), interventions (forwarded CtoC requests),
/// replies (data and NAKs flowing back to processors), writeback traffic
/// (evictions, copybacks and their acks) and invalidation rounds.
pub fn traffic_class(kind: MsgType) -> usize {
    match kind {
        MsgType::ReadRequest | MsgType::WriteRequest => 0,
        MsgType::CtoCRequest => 1,
        MsgType::ReadReply | MsgType::WriteReply | MsgType::CtoCData | MsgType::Retry => 2,
        MsgType::WriteBack | MsgType::CopyBack | MsgType::WriteBackAck => 3,
        MsgType::Invalidate | MsgType::InvalAck => 4,
    }
}

/// Decodes the interconnect's packed [`LinkKey`] into a stable human label.
/// Mirrors the packing in `dresar-interconnect`'s `link_key` (variant tag
/// in bits 32..); `tests/topology_invariant.rs` cross-checks the two.
pub fn link_label(key: LinkKey) -> String {
    let k = key.0;
    let low = k & 0xffff_ffff;
    match k >> 32 {
        0 => format!("link:proc{low}.up"),
        1 => format!("link:proc{low}.down"),
        2 => format!("link:mem{low}.up"),
        3 => format!("link:mem{low}.down"),
        tag @ (4 | 5) => {
            let stage = (low >> 24) & 0xff;
            let lower = (low >> 8) & 0xffff;
            let port = low & 0xff;
            let dir = if tag == 4 { "up" } else { "down" };
            format!("link:s{stage}.x{lower}.p{port}.{dir}")
        }
        _ => format!("link:raw{k:#x}"),
    }
}

/// Accumulated load of one serialized resource (a link or a home
/// controller + DRAM pipeline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceLoad {
    /// Cycles the resource spent occupied.
    pub busy_cycles: Cycle,
    /// Cycles messages waited for the resource before acquiring it.
    pub wait_cycles: Cycle,
    /// Number of bookings / services.
    pub events: u64,
    /// Flits serialized (links only; zero for homes).
    pub flits: u64,
    /// Busy cycles split by [`traffic_class`].
    pub class_busy: [Cycle; 5],
    /// Busiest single attribution window's busy cycles.
    pub peak_window_busy: Cycle,
    /// Index of that window.
    pub peak_window: Cycle,
    cur_window: Cycle,
    cur_busy: Cycle,
}

impl ResourceLoad {
    /// Books `[start, end)` busy cycles of class `class` after `wait`
    /// cycles of queuing. Starts are monotone per resource (serialized
    /// acquisition), which keeps the streaming window fold exact.
    fn book(&mut self, window: Cycle, class: usize, start: Cycle, end: Cycle, wait: Cycle) {
        let busy = end.saturating_sub(start);
        self.busy_cycles += busy;
        self.wait_cycles += wait;
        self.events += 1;
        self.class_busy[class] += busy;
        let w = start / window;
        if w != self.cur_window {
            self.fold_window();
            self.cur_window = w;
        }
        self.cur_busy += busy;
    }

    fn fold_window(&mut self) {
        if self.cur_busy > self.peak_window_busy {
            self.peak_window_busy = self.cur_busy;
            self.peak_window = self.cur_window;
        }
        self.cur_busy = 0;
    }

    fn json(&self) -> JsonValue {
        JsonValue::obj()
            .field("busy_cycles", self.busy_cycles)
            .field("wait_cycles", self.wait_cycles)
            .field("events", self.events)
            .field("flits", self.flits)
            .field("class_busy", self.class_busy.to_vec())
            .field("peak_window", self.peak_window)
            .field("peak_window_busy", self.peak_window_busy)
            .build()
    }
}

/// One link's row in the heatmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkLoad {
    /// Dense `LinkIndexer` id.
    pub dense: u32,
    /// Packed link identity.
    pub key: LinkKey,
    /// Accumulated load.
    pub load: ResourceLoad,
}

/// One switch's row: crossbar pressure (hops through the switch, by
/// class) and switch-directory bank load (occupancy peaks and the snoops
/// it held up with NAKs or accumulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchLoad {
    /// Message headers that crossed the switch.
    pub hops: u64,
    /// Messages the switch directory sank (SD read hits / accumulated).
    pub sinks: u64,
    /// Hops split by [`traffic_class`].
    pub class_hops: [u64; 5],
    /// Peak valid SD entries observed.
    pub sd_peak_valid: u64,
    /// Peak TRANSIENT (pending-buffer) entries observed.
    pub sd_peak_transient: u64,
    /// Snoops held at the bank: transient NAKs, accumulated readers and
    /// write NAKs.
    pub sd_wait_events: u64,
    /// SD entries evicted.
    pub sd_evictions: u64,
}

/// The critical resource: the link or home with the largest busy share.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalResource {
    /// Stable label (`link:...` or `home:<n>`).
    pub resource: String,
    /// Its busy cycles.
    pub busy_cycles: Cycle,
    /// `busy_cycles / total_cycles`. Can exceed 1.0 for homes: a home
    /// service interval spans controller occupancy plus the banked DRAM
    /// access, and banks overlap, so aggregate service time at a
    /// congested home legitimately outruns wall-clock.
    pub utilization: f64,
}

/// The finished topology heatmap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Heatmap {
    /// Attribution window width, cycles.
    pub window: Cycle,
    /// Last cycle observed (the utilization denominator).
    pub total_cycles: Cycle,
    /// Per-link loads, dense-id ascending, active links only.
    pub links: Vec<LinkLoad>,
    /// Per-switch loads, linear-index ascending, active switches only.
    pub switches: Vec<(u16, SwitchLoad)>,
    /// Per-home loads, node-id ascending, active homes only.
    pub homes: Vec<(NodeId, ResourceLoad)>,
    /// The busiest serialized resource, if anything was booked.
    pub critical: Option<CriticalResource>,
}

impl ToJson for Heatmap {
    fn to_json(&self) -> JsonValue {
        let links: Vec<JsonValue> = self
            .links
            .iter()
            .map(|l| {
                JsonValue::obj()
                    .field("dense", l.dense)
                    .field("label", link_label(l.key))
                    .field("load", l.load.json())
                    .build()
            })
            .collect();
        let switches: Vec<JsonValue> = self
            .switches
            .iter()
            .map(|(linear, s)| {
                JsonValue::obj()
                    .field("switch", *linear)
                    .field("hops", s.hops)
                    .field("sinks", s.sinks)
                    .field("class_hops", s.class_hops.to_vec())
                    .field("sd_peak_valid", s.sd_peak_valid)
                    .field("sd_peak_transient", s.sd_peak_transient)
                    .field("sd_wait_events", s.sd_wait_events)
                    .field("sd_evictions", s.sd_evictions)
                    .build()
            })
            .collect();
        let homes: Vec<JsonValue> = self
            .homes
            .iter()
            .map(|(h, load)| JsonValue::obj().field("home", *h).field("load", load.json()).build())
            .collect();
        let mut b = JsonValue::obj()
            .field("heatmap_version", HEATMAP_VERSION)
            .field("window_cycles", self.window)
            .field("total_cycles", self.total_cycles)
            .field("classes", TRAFFIC_CLASSES.iter().map(|c| c.to_string()).collect::<Vec<_>>())
            .field("links", links)
            .field("switches", switches)
            .field("homes", homes);
        if let Some(c) = &self.critical {
            b = b.field(
                "critical",
                JsonValue::obj()
                    .field("resource", c.resource.as_str())
                    .field("busy_cycles", c.busy_cycles)
                    .field("utilization", c.utilization)
                    .build(),
            );
        }
        b.build()
    }
}

/// One link slot in the dense table (key recorded on first booking).
#[derive(Debug, Clone, Default)]
struct LinkSlot {
    key: LinkKey,
    load: ResourceLoad,
}

/// The live attribution observer.
#[derive(Debug)]
pub struct AttribObserver {
    window: Cycle,
    links: Vec<LinkSlot>,
    switches: Vec<SwitchLoad>,
    homes: Vec<ResourceLoad>,
    end: Cycle,
}

impl AttribObserver {
    /// Creates an observer with the given window width (clamped to >= 1)
    /// for `nodes` homes and `switches` switches.
    pub fn new(window: Cycle, nodes: usize, switches: usize) -> Self {
        AttribObserver {
            window: window.max(1),
            links: Vec::new(),
            switches: vec![SwitchLoad::default(); switches],
            homes: vec![ResourceLoad::default(); nodes],
            end: 0,
        }
    }

    fn link_slot(&mut self, dense: u32) -> &mut LinkSlot {
        let i = dense as usize;
        if i >= self.links.len() {
            self.links.resize(i + 1, LinkSlot::default());
        }
        &mut self.links[i]
    }

    /// Finalizes into the heatmap payload.
    pub fn finish(mut self) -> Heatmap {
        for slot in &mut self.links {
            slot.load.fold_window();
        }
        for home in &mut self.homes {
            home.fold_window();
        }
        let total = self.end.max(1);
        let mut critical: Option<CriticalResource> = None;
        let mut consider = |resource: String, busy: Cycle| {
            if busy > 0 && critical.as_ref().is_none_or(|c| busy > c.busy_cycles) {
                critical = Some(CriticalResource {
                    resource,
                    busy_cycles: busy,
                    utilization: busy as f64 / total as f64,
                });
            }
        };
        for slot in &self.links {
            if slot.load.events > 0 {
                consider(link_label(slot.key), slot.load.busy_cycles);
            }
        }
        for (h, load) in self.homes.iter().enumerate() {
            if load.events > 0 {
                consider(format!("home:{h}"), load.busy_cycles);
            }
        }
        Heatmap {
            window: self.window,
            total_cycles: self.end,
            links: self
                .links
                .iter()
                .enumerate()
                .filter(|(_, s)| s.load.events > 0)
                .map(|(i, s)| LinkLoad { dense: i as u32, key: s.key, load: s.load.clone() })
                .collect(),
            switches: self
                .switches
                .iter()
                .enumerate()
                .filter(|(_, s)| s.hops + s.sinks + s.sd_wait_events + s.sd_evictions > 0)
                .map(|(i, s)| (i as u16, *s))
                .collect(),
            homes: self
                .homes
                .iter()
                .enumerate()
                .filter(|(_, l)| l.events > 0)
                .map(|(i, l)| (i as NodeId, l.clone()))
                .collect(),
            critical,
        }
    }
}

impl Probe for AttribObserver {
    fn tick(&mut self, t: Cycle, _queue_depth: usize) {
        self.end = self.end.max(t);
    }

    fn msg_hop(&mut self, _t: Cycle, msg: &Message, sw: SwitchLoc) {
        if let Some(s) = self.switches.get_mut(sw.linear as usize) {
            s.hops += 1;
            s.class_hops[traffic_class(msg.kind)] += 1;
        }
    }

    fn msg_sink(&mut self, _t: Cycle, _msg: &Message, sw: SwitchLoc) {
        if let Some(s) = self.switches.get_mut(sw.linear as usize) {
            s.sinks += 1;
        }
    }

    fn sd_event(&mut self, _t: Cycle, sw: SwitchLoc, _block: BlockAddr, ev: SdProbeEvent) {
        let Some(s) = self.switches.get_mut(sw.linear as usize) else { return };
        match ev {
            SdProbeEvent::TransientNak { .. }
            | SdProbeEvent::ReaderAccumulated { .. }
            | SdProbeEvent::WriteNak { .. } => s.sd_wait_events += 1,
            SdProbeEvent::Evict => s.sd_evictions += 1,
            _ => {}
        }
    }

    fn sd_occupancy(&mut self, _t: Cycle, sw: SwitchLoc, valid: usize, transient: usize) {
        if let Some(s) = self.switches.get_mut(sw.linear as usize) {
            s.sd_peak_valid = s.sd_peak_valid.max(valid as u64);
            s.sd_peak_transient = s.sd_peak_transient.max(transient as u64);
        }
    }

    fn home_service(
        &mut self,
        home: NodeId,
        _block: BlockAddr,
        kind: MsgType,
        arrive: Cycle,
        start: Cycle,
        done: Cycle,
    ) {
        let window = self.window;
        if let Some(h) = self.homes.get_mut(home as usize) {
            h.book(window, traffic_class(kind), start, done, start.saturating_sub(arrive));
        }
        self.end = self.end.max(done);
    }

    fn link_traverse(
        &mut self,
        link: LinkKey,
        dense: u32,
        start: Cycle,
        end: Cycle,
        flits: u32,
        kind: MsgType,
        wait: Cycle,
    ) {
        let window = self.window;
        let slot = self.link_slot(dense);
        slot.key = link;
        slot.load.book(window, traffic_class(kind), start, end, wait);
        slot.load.flits += flits as u64;
        self.end = self.end.max(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observer() -> AttribObserver {
        AttribObserver::new(100, 2, 2)
    }

    #[test]
    fn traffic_classes_cover_every_message_type() {
        use MsgType::*;
        let all = [
            ReadRequest,
            WriteRequest,
            WriteReply,
            CtoCRequest,
            CopyBack,
            WriteBack,
            Retry,
            ReadReply,
            CtoCData,
            Invalidate,
            InvalAck,
            WriteBackAck,
        ];
        for kind in all {
            assert!(traffic_class(kind) < TRAFFIC_CLASSES.len(), "{kind:?}");
        }
        assert_eq!(traffic_class(ReadRequest), 0);
        assert_eq!(traffic_class(CtoCRequest), 1);
        assert_eq!(traffic_class(CtoCData), 2);
        assert_eq!(traffic_class(CopyBack), 3);
        assert_eq!(traffic_class(Invalidate), 4);
    }

    #[test]
    fn link_bookings_accumulate_by_class() {
        let mut a = observer();
        a.link_traverse(LinkKey(7), 3, 0, 20, 5, MsgType::ReadRequest, 0);
        a.link_traverse(LinkKey(7), 3, 20, 24, 1, MsgType::ReadReply, 16);
        let hm = a.finish();
        assert_eq!(hm.links.len(), 1);
        let l = &hm.links[0];
        assert_eq!(l.dense, 3);
        assert_eq!(l.load.busy_cycles, 24);
        assert_eq!(l.load.wait_cycles, 16);
        assert_eq!(l.load.events, 2);
        assert_eq!(l.load.flits, 6);
        assert_eq!(l.load.class_busy[0], 20);
        assert_eq!(l.load.class_busy[2], 4);
    }

    #[test]
    fn peak_window_tracks_the_busiest_window() {
        let mut a = observer();
        // Window 0: 10 busy cycles; window 2: 60 busy cycles.
        a.link_traverse(LinkKey(1), 0, 5, 15, 1, MsgType::ReadRequest, 0);
        a.link_traverse(LinkKey(1), 0, 200, 260, 5, MsgType::ReadReply, 0);
        let hm = a.finish();
        assert_eq!(hm.links[0].load.peak_window, 2);
        assert_eq!(hm.links[0].load.peak_window_busy, 60);
    }

    #[test]
    fn home_service_books_wait_and_busy() {
        let mut a = observer();
        a.home_service(1, BlockAddr(9), MsgType::WriteBack, 10, 30, 90);
        let hm = a.finish();
        assert_eq!(hm.homes.len(), 1);
        let (h, load) = &hm.homes[0];
        assert_eq!(*h, 1);
        assert_eq!(load.busy_cycles, 60);
        assert_eq!(load.wait_cycles, 20);
        assert_eq!(load.class_busy[3], 60);
    }

    #[test]
    fn critical_resource_is_the_busiest_link_or_home() {
        let mut a = observer();
        a.link_traverse(LinkKey(0), 0, 0, 40, 5, MsgType::ReadRequest, 0);
        a.home_service(0, BlockAddr(0), MsgType::ReadRequest, 0, 0, 100);
        let hm = a.finish();
        let c = hm.critical.expect("critical resource");
        assert_eq!(c.resource, "home:0");
        assert_eq!(c.busy_cycles, 100);
        assert!((c.utilization - 1.0).abs() < 1e-9, "{}", c.utilization);
    }

    #[test]
    fn empty_runs_produce_an_empty_heatmap() {
        let hm = observer().finish();
        assert!(hm.links.is_empty() && hm.switches.is_empty() && hm.homes.is_empty());
        assert!(hm.critical.is_none());
        let dump = hm.to_json().dump();
        assert!(dump.contains("\"heatmap_version\":1"), "{dump}");
    }

    #[test]
    fn link_labels_decode_every_variant() {
        assert_eq!(link_label(LinkKey(5)), "link:proc5.up");
        assert_eq!(link_label(LinkKey((1u64 << 32) | 3)), "link:proc3.down");
        assert_eq!(link_label(LinkKey((2u64 << 32) | 7)), "link:mem7.up");
        assert_eq!(link_label(LinkKey((3u64 << 32) | 7)), "link:mem7.down");
        let up = (4u64 << 32) | (1u64 << 24) | (2u64 << 8) | 3;
        assert_eq!(link_label(LinkKey(up)), "link:s1.x2.p3.up");
        let down = (5u64 << 32) | (1u64 << 24) | (2u64 << 8) | 3;
        assert_eq!(link_label(LinkKey(down)), "link:s1.x2.p3.down");
    }

    #[test]
    fn sd_bank_pressure_lands_on_the_switch_rows() {
        let mut a = observer();
        let sw = SwitchLoc { stage: 0, index: 1, linear: 1 };
        a.sd_event(5, sw, BlockAddr(1), SdProbeEvent::TransientNak { requester: 2 });
        a.sd_event(6, sw, BlockAddr(1), SdProbeEvent::Evict);
        a.sd_occupancy(7, sw, 9, 4);
        let hm = a.finish();
        assert_eq!(hm.switches.len(), 1);
        let (linear, s) = hm.switches[0];
        assert_eq!(linear, 1);
        assert_eq!(s.sd_wait_events, 1);
        assert_eq!(s.sd_evictions, 1);
        assert_eq!(s.sd_peak_valid, 9);
        assert_eq!(s.sd_peak_transient, 4);
    }
}
