//! # dresar-obs
//!
//! Observability for the dresar simulators.
//!
//! The central abstraction is the [`Probe`] trait: a vocabulary of
//! message-lifecycle, switch-directory, home-directory and resource events
//! that the simulators emit from their hot paths. Every method has an empty
//! `#[inline]` default, and the simulators are generic over `P: Probe`, so a
//! run instrumented with [`NullProbe`] monomorphizes to exactly the
//! uninstrumented code — observability is free when it is off.
//!
//! Five observers implement `Probe`:
//!
//! * [`breakdown::LatencyRecorder`] — decomposes every read miss into
//!   per-phase cycle counts (L2 detect, retry wait, request network, home
//!   service, data return) with log2-bucketed latency histograms per
//!   [`ReadClass`] and per-node / per-switch summaries;
//! * [`sampler::Sampler`] — cycle-windowed time series of event-queue
//!   depth, home-controller busy cycles, link busy cycles, switch-directory
//!   occupancy and eviction/NAK rates;
//! * [`trace::Tracer`] — a Chrome `about:tracing` / Perfetto compatible
//!   trace-event JSON stream of message and transaction lifecycles, with
//!   flow events stitching each transaction into a causal tree;
//! * [`recorder::FlightRecorder`] — a bounded ring of compact event
//!   records, cheap enough to leave on for every run and dumped post
//!   mortem when a watchdog, audit or fault anomaly fires;
//! * [`attrib::AttribObserver`] — per-resource contention attribution
//!   (links, crossbar ports, SD banks, home directories) split by traffic
//!   class, distilled into a deterministic topology heatmap naming the
//!   critical resource.
//!
//! [`ObserverSet`] bundles any subset of the five behind one `Probe`
//! implementation and is what [`ObserverConfig`] enables from run options.

pub mod attrib;
pub mod breakdown;
pub mod hostprof;
pub mod metrics;
pub mod recorder;
pub mod sampler;
pub mod trace;

use dresar_stats::ReadClass;
use dresar_types::msg::{Message, MsgType};
use dresar_types::{BlockAddr, Cycle, JsonValue, NodeId, ToJson};

pub use attrib::{
    link_label, traffic_class, AttribObserver, Heatmap, DEFAULT_ATTRIB_WINDOW, TRAFFIC_CLASSES,
};
pub use breakdown::{
    log2_bucket, log2_percentile, LatencyBreakdown, LatencyRecorder, PhaseSums, PHASES,
};
pub use hostprof::{HostProfile, HostProfiler, PhaseTiming, RunTiming};
pub use metrics::{MetricDelta, MetricValue, MetricsRegistry};
pub use recorder::{FlightDump, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use sampler::{Sampler, TimeSeries, WindowSample};
pub use trace::Tracer;

/// Identifies a switch: BMIN position plus the simulator's linear index
/// (stage-major), which observers use for dense per-switch vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchLoc {
    /// Stage of the BMIN, 0 = adjacent to the processors.
    pub stage: u8,
    /// Index of the switch within its stage.
    pub index: u16,
    /// Linear index across all stages (stage-major).
    pub linear: u16,
}

/// Opaque identity of a directed network link, packed by the interconnect
/// (variant tag in the top bits). Stable across runs of the same topology.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct LinkKey(pub u64);

/// Where a read miss was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicePoint {
    /// The home node's directory/DRAM.
    Home(NodeId),
    /// A switch directory sank the read (SD hit or accumulated wait).
    Switch(SwitchLoc),
}

/// Outcome of one switch-directory snoop, as observed on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdProbeEvent {
    /// A passing `WriteReply` installed (or refreshed) a MODIFIED entry.
    Insert,
    /// An install was refused (all ways pinned TRANSIENT).
    InsertBlocked,
    /// A valid MODIFIED entry was evicted to make room.
    Evict,
    /// A read hit a MODIFIED entry: sunk, CtoC request generated.
    ReadHit {
        /// Recorded owner the CtoC is routed to.
        owner: NodeId,
        /// The reader being served.
        requester: NodeId,
    },
    /// A read hit a TRANSIENT entry and was NAK'd.
    TransientNak {
        /// The NAK'd reader.
        requester: NodeId,
    },
    /// A read hit a TRANSIENT entry and was queued in the bit vector
    /// (Accumulate policy).
    ReaderAccumulated {
        /// The accumulated reader.
        requester: NodeId,
    },
    /// A write/CtoC/writeback invalidated an entry.
    Invalidate,
    /// A write or foreign CtoC was NAK'd on a TRANSIENT entry.
    WriteNak {
        /// The NAK'd requester.
        requester: NodeId,
    },
    /// A copyback was marked with served-sharer pids.
    CopybackMarked {
        /// Number of pids carried.
        served: u32,
    },
    /// A writeback's data answered waiting readers.
    WritebackServed {
        /// Number of readers served.
        served: u32,
    },
}

impl SdProbeEvent {
    /// Short stable label (used by the tracer).
    pub fn label(&self) -> &'static str {
        match self {
            SdProbeEvent::Insert => "sd_insert",
            SdProbeEvent::InsertBlocked => "sd_insert_blocked",
            SdProbeEvent::Evict => "sd_evict",
            SdProbeEvent::ReadHit { .. } => "sd_read_hit",
            SdProbeEvent::TransientNak { .. } => "sd_transient_nak",
            SdProbeEvent::ReaderAccumulated { .. } => "sd_reader_accumulated",
            SdProbeEvent::Invalidate => "sd_invalidate",
            SdProbeEvent::WriteNak { .. } => "sd_write_nak",
            SdProbeEvent::CopybackMarked { .. } => "sd_copyback_marked",
            SdProbeEvent::WritebackServed { .. } => "sd_writeback_served",
        }
    }
}

/// Stable-state kind of a home-directory block (the full state carries a
/// sharer vector / owner; observers only need the discriminant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirStateKind {
    /// Memory is the only copy.
    Uncached,
    /// Read-only copies exist.
    Shared,
    /// One cache holds the block dirty.
    Modified,
    /// One cache holds the block dirty *and* read-only copies exist
    /// (MOESI's dirty-sharing state; never reported under MSI).
    Owned,
}

impl DirStateKind {
    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            DirStateKind::Uncached => "U",
            DirStateKind::Shared => "S",
            DirStateKind::Modified => "M",
            DirStateKind::Owned => "O",
        }
    }
}

/// Kind of request driving a home-directory FSM transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeReq {
    /// `ReadRequest`.
    Read,
    /// `WriteRequest`.
    Write,
    /// `InvalAck`.
    InvalAck,
    /// `CopyBack`.
    CopyBack,
    /// `WriteBack`.
    WriteBack,
}

impl HomeReq {
    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            HomeReq::Read => "read",
            HomeReq::Write => "write",
            HomeReq::InvalAck => "inval_ack",
            HomeReq::CopyBack => "copyback",
            HomeReq::WriteBack => "writeback",
        }
    }
}

/// One observed home-directory FSM transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeTransition {
    /// The request kind driving the transition.
    pub req: HomeReq,
    /// Stable state before.
    pub from: DirStateKind,
    /// Whether a transaction was in flight before.
    pub from_busy: bool,
    /// Stable state after.
    pub to: DirStateKind,
    /// Whether a transaction is in flight after.
    pub to_busy: bool,
    /// The request was NAK'd.
    pub nak: bool,
    /// The request was parked in the pending queue.
    pub queued: bool,
}

/// The event vocabulary the simulators emit. Every method defaults to a
/// no-op; [`NullProbe`] relies on that to vanish entirely after inlining.
#[allow(unused_variables)]
pub trait Probe {
    /// One simulation event popped at time `t` with `queue_depth` events
    /// still pending.
    #[inline]
    fn tick(&mut self, t: Cycle, queue_depth: usize) {}

    /// A message was injected into the network.
    #[inline]
    fn msg_send(&mut self, t: Cycle, msg: &Message) {}

    /// A message header reached a switch (before the snoop).
    #[inline]
    fn msg_hop(&mut self, t: Cycle, msg: &Message, sw: SwitchLoc) {}

    /// A switch directory consumed the message.
    #[inline]
    fn msg_sink(&mut self, t: Cycle, msg: &Message, sw: SwitchLoc) {}

    /// A message was delivered at its endpoint (tail fully arrived).
    #[inline]
    fn msg_deliver(&mut self, t: Cycle, msg: &Message) {}

    /// A switch-directory snoop produced a notable outcome.
    #[inline]
    fn sd_event(&mut self, t: Cycle, sw: SwitchLoc, block: BlockAddr, ev: SdProbeEvent) {}

    /// Switch-directory load after a snoop: valid entries and TRANSIENT
    /// (pending-buffer) entries.
    #[inline]
    fn sd_occupancy(&mut self, t: Cycle, sw: SwitchLoc, valid: usize, transient: usize) {}

    /// A home-directory FSM transition executed.
    #[inline]
    fn home_fsm(&mut self, t: Cycle, home: NodeId, block: BlockAddr, tr: HomeTransition) {}

    /// The home controller + DRAM processed a `kind` message: arrival at
    /// `arrive`, controller acquired at `start`, finished at `done`.
    #[inline]
    fn home_service(
        &mut self,
        home: NodeId,
        block: BlockAddr,
        kind: MsgType,
        arrive: Cycle,
        start: Cycle,
        done: Cycle,
    ) {
    }

    /// A processor received a NAK for its outstanding transaction.
    #[inline]
    fn nak_received(&mut self, t: Cycle, node: NodeId, block: BlockAddr) {}

    /// A directed link was booked from `start` to `end` for `flits` flits
    /// by a `kind` message that waited `wait` cycles for the link. `dense`
    /// is the interconnect's `LinkIndexer` id, a stable dense key for
    /// per-link observer tables.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn link_traverse(
        &mut self,
        link: LinkKey,
        dense: u32,
        start: Cycle,
        end: Cycle,
        flits: u32,
        kind: MsgType,
        wait: Cycle,
    ) {
    }

    /// A read miss left the processor: stall began at `t0`, the request
    /// enters the network at `inject` (after L2 miss detection). `txn` is
    /// the stable transaction id every message sent on this miss's behalf
    /// carries, linking all lifecycle events into one causal tree.
    #[inline]
    fn read_issue(&mut self, node: NodeId, block: BlockAddr, t0: Cycle, inject: Cycle, txn: u64) {}

    /// A NAK'd read re-issued at `t`.
    #[inline]
    fn read_retry(&mut self, node: NodeId, block: BlockAddr, t: Cycle, txn: u64) {}

    /// The read reached its service point (home arrival or SD sink).
    #[inline]
    fn read_service_arrive(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        at: ServicePoint,
        t: Cycle,
        txn: u64,
    ) {
    }

    /// The service point finished and the reply/intervention departed.
    #[inline]
    fn read_service_done(&mut self, node: NodeId, block: BlockAddr, t: Cycle, txn: u64) {}

    /// The read miss completed with `latency` cycles issue-to-data.
    #[inline]
    fn read_complete(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        class: ReadClass,
        latency: Cycle,
        t: Cycle,
        txn: u64,
    ) {
    }
}

/// The do-nothing probe: instrumented code monomorphized with this is
/// identical to uninstrumented code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Which observers to enable for a run. `Default` is everything off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverConfig {
    /// Record per-phase read-miss latency breakdowns.
    pub latency_breakdown: bool,
    /// Collect a time series with this window size in cycles.
    pub timeseries_window: Option<Cycle>,
    /// Emit a Chrome trace-event JSON stream.
    pub trace: bool,
    /// Keep a flight-recorder ring of the last N event records for
    /// postmortem dumps.
    pub flight: Option<usize>,
    /// Attribute contention per topology resource into a heatmap, with
    /// this attribution-window size in cycles.
    pub heatmap_window: Option<Cycle>,
}

impl ObserverConfig {
    /// Whether any observer is on.
    pub fn enabled(&self) -> bool {
        self.latency_breakdown
            || self.timeseries_window.is_some()
            || self.trace
            || self.flight.is_some()
            || self.heatmap_window.is_some()
    }

    /// Everything on, with the given sampling window.
    pub fn all(window: Cycle) -> Self {
        ObserverConfig {
            latency_breakdown: true,
            timeseries_window: Some(window),
            trace: true,
            flight: Some(DEFAULT_FLIGHT_CAPACITY),
            heatmap_window: Some(window),
        }
    }
}

/// Static shape of the machine, needed to size per-node / per-switch
/// observer state.
#[derive(Debug, Clone, Copy)]
pub struct MachineShape {
    /// Number of nodes.
    pub nodes: usize,
    /// Total number of switches across all stages.
    pub switches: usize,
}

/// What the observers produced, attached to the execution report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Per-phase read-latency breakdown, if recorded.
    pub breakdown: Option<LatencyBreakdown>,
    /// Cycle-windowed time series, if sampled.
    pub timeseries: Option<TimeSeries>,
    /// Chrome trace-event JSON document, if traced.
    pub trace: Option<String>,
    /// Flight-recorder dump, if attached (anomalous runs only).
    pub flight: Option<FlightDump>,
    /// Topology contention heatmap, if attributed.
    pub heatmap: Option<Heatmap>,
}

impl ObsReport {
    /// Whether every observer payload is absent.
    pub fn is_empty(&self) -> bool {
        self.breakdown.is_none()
            && self.timeseries.is_none()
            && self.trace.is_none()
            && self.flight.is_none()
            && self.heatmap.is_none()
    }
}

impl ToJson for ObsReport {
    fn to_json(&self) -> JsonValue {
        let mut b = JsonValue::obj();
        if let Some(bd) = &self.breakdown {
            b = b.field("breakdown", bd.to_json());
        }
        if let Some(ts) = &self.timeseries {
            b = b.field("timeseries", ts.to_json());
        }
        if let Some(tr) = &self.trace {
            b = b.field("trace_events", JsonValue::Str(tr.clone()));
        }
        if let Some(fl) = &self.flight {
            b = b.field("flight", fl.to_json());
        }
        if let Some(hm) = &self.heatmap {
            b = b.field("heatmap", hm.to_json());
        }
        b.build()
    }
}

/// Bundles the enabled observers behind a single [`Probe`] implementation.
#[derive(Debug)]
pub struct ObserverSet {
    recorder: Option<LatencyRecorder>,
    sampler: Option<Sampler>,
    tracer: Option<Tracer>,
    flight: Option<FlightRecorder>,
    attrib: Option<AttribObserver>,
}

impl ObserverSet {
    /// Builds the observers `cfg` enables for a machine of `shape`.
    pub fn new(cfg: ObserverConfig, shape: MachineShape) -> Self {
        ObserverSet {
            recorder: cfg.latency_breakdown.then(|| LatencyRecorder::new(shape)),
            sampler: cfg.timeseries_window.map(Sampler::new),
            tracer: cfg.trace.then(Tracer::new),
            flight: cfg.flight.map(FlightRecorder::new),
            attrib: cfg.heatmap_window.map(|w| AttribObserver::new(w, shape.nodes, shape.switches)),
        }
    }

    /// Finalizes all observers into the report payload.
    pub fn finish(self) -> ObsReport {
        ObsReport {
            breakdown: self.recorder.map(LatencyRecorder::finish),
            timeseries: self.sampler.map(Sampler::finish),
            trace: self.tracer.map(Tracer::finish),
            flight: self.flight.map(FlightRecorder::finish),
            heatmap: self.attrib.map(AttribObserver::finish),
        }
    }
}

macro_rules! fan_out {
    ($self:ident, $m:ident ( $($a:expr),* )) => {
        if let Some(r) = $self.recorder.as_mut() {
            r.$m($($a),*);
        }
        if let Some(s) = $self.sampler.as_mut() {
            s.$m($($a),*);
        }
        if let Some(t) = $self.tracer.as_mut() {
            t.$m($($a),*);
        }
        if let Some(f) = $self.flight.as_mut() {
            f.$m($($a),*);
        }
        if let Some(a) = $self.attrib.as_mut() {
            a.$m($($a),*);
        }
    };
}

impl Probe for ObserverSet {
    fn tick(&mut self, t: Cycle, queue_depth: usize) {
        fan_out!(self, tick(t, queue_depth));
    }
    fn msg_send(&mut self, t: Cycle, msg: &Message) {
        fan_out!(self, msg_send(t, msg));
    }
    fn msg_hop(&mut self, t: Cycle, msg: &Message, sw: SwitchLoc) {
        fan_out!(self, msg_hop(t, msg, sw));
    }
    fn msg_sink(&mut self, t: Cycle, msg: &Message, sw: SwitchLoc) {
        fan_out!(self, msg_sink(t, msg, sw));
    }
    fn msg_deliver(&mut self, t: Cycle, msg: &Message) {
        fan_out!(self, msg_deliver(t, msg));
    }
    fn sd_event(&mut self, t: Cycle, sw: SwitchLoc, block: BlockAddr, ev: SdProbeEvent) {
        fan_out!(self, sd_event(t, sw, block, ev));
    }
    fn sd_occupancy(&mut self, t: Cycle, sw: SwitchLoc, valid: usize, transient: usize) {
        fan_out!(self, sd_occupancy(t, sw, valid, transient));
    }
    fn home_fsm(&mut self, t: Cycle, home: NodeId, block: BlockAddr, tr: HomeTransition) {
        fan_out!(self, home_fsm(t, home, block, tr));
    }
    fn home_service(
        &mut self,
        home: NodeId,
        block: BlockAddr,
        kind: MsgType,
        arrive: Cycle,
        start: Cycle,
        done: Cycle,
    ) {
        fan_out!(self, home_service(home, block, kind, arrive, start, done));
    }
    fn nak_received(&mut self, t: Cycle, node: NodeId, block: BlockAddr) {
        fan_out!(self, nak_received(t, node, block));
    }
    fn link_traverse(
        &mut self,
        link: LinkKey,
        dense: u32,
        start: Cycle,
        end: Cycle,
        flits: u32,
        kind: MsgType,
        wait: Cycle,
    ) {
        fan_out!(self, link_traverse(link, dense, start, end, flits, kind, wait));
    }
    fn read_issue(&mut self, node: NodeId, block: BlockAddr, t0: Cycle, inject: Cycle, txn: u64) {
        fan_out!(self, read_issue(node, block, t0, inject, txn));
    }
    fn read_retry(&mut self, node: NodeId, block: BlockAddr, t: Cycle, txn: u64) {
        fan_out!(self, read_retry(node, block, t, txn));
    }
    fn read_service_arrive(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        at: ServicePoint,
        t: Cycle,
        txn: u64,
    ) {
        fan_out!(self, read_service_arrive(node, block, at, t, txn));
    }
    fn read_service_done(&mut self, node: NodeId, block: BlockAddr, t: Cycle, txn: u64) {
        fan_out!(self, read_service_done(node, block, t, txn));
    }
    fn read_complete(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        class: ReadClass,
        latency: Cycle,
        t: Cycle,
        txn: u64,
    ) {
        fan_out!(self, read_complete(node, block, class, latency, t, txn));
    }
}

/// Index of a [`ReadClass`] into per-class arrays (stable order:
/// clean, home CtoC, switch CtoC).
pub fn class_index(class: ReadClass) -> usize {
    match class {
        ReadClass::CleanMemory => 0,
        ReadClass::DirtyCtoCHome => 1,
        ReadClass::DirtyCtoCSwitch => 2,
    }
}

/// Stable labels matching [`class_index`].
pub const CLASS_LABELS: [&str; 3] = ["clean_memory", "dirty_ctoc_home", "dirty_ctoc_switch"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
    }

    #[test]
    fn observer_config_enabled_logic() {
        assert!(!ObserverConfig::default().enabled());
        assert!(ObserverConfig { latency_breakdown: true, ..Default::default() }.enabled());
        assert!(ObserverConfig { timeseries_window: Some(64), ..Default::default() }.enabled());
        assert!(ObserverConfig { trace: true, ..Default::default() }.enabled());
        assert!(ObserverConfig { flight: Some(1024), ..Default::default() }.enabled());
        assert!(ObserverConfig::all(128).enabled());
    }

    #[test]
    fn observer_set_builds_only_requested_observers() {
        let shape = MachineShape { nodes: 4, switches: 4 };
        let set = ObserverSet::new(
            ObserverConfig { latency_breakdown: true, ..Default::default() },
            shape,
        );
        let report = set.finish();
        assert!(report.breakdown.is_some());
        assert!(report.timeseries.is_none());
        assert!(report.trace.is_none());
        assert!(report.flight.is_none());
        assert!(!report.is_empty());
        assert!(ObsReport::default().is_empty());
    }

    #[test]
    fn class_indices_cover_all_classes() {
        assert_eq!(class_index(ReadClass::CleanMemory), 0);
        assert_eq!(class_index(ReadClass::DirtyCtoCHome), 1);
        assert_eq!(class_index(ReadClass::DirtyCtoCSwitch), 2);
    }
}
