//! Cycle-windowed time-series sampling.
//!
//! The sampler buckets observed activity into fixed-width cycle windows:
//! event counts and peak event-queue depth from the simulation loop, busy
//! cycles of home controllers and network links (intervals are split across
//! the windows they span), switch-directory occupancy peaks, evictions and
//! NAK/retry rates. The result is a compact per-window table suitable for
//! plotting utilization over time.

use crate::{LinkKey, Probe, SdProbeEvent, SwitchLoc};
use dresar_stats::ReadClass;
use dresar_types::msg::{Message, MsgType};
use dresar_types::{BlockAddr, Cycle, JsonValue, NodeId, ToJson};

/// One window's accumulated activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Simulation events processed in the window.
    pub events: u64,
    /// Peak pending-event-queue depth observed.
    pub peak_queue_depth: u64,
    /// Messages injected into the network.
    pub msgs_sent: u64,
    /// Busy cycles of home controllers + DRAM attributed to this window.
    pub home_busy: u64,
    /// Busy cycles of network links attributed to this window.
    pub link_busy: u64,
    /// Peak switch-directory occupancy (valid entries, max over switches).
    pub sd_peak_occupancy: u64,
    /// Peak TRANSIENT (pending-buffer) entries, max over switches.
    pub sd_peak_transients: u64,
    /// Switch-directory entries evicted.
    pub sd_evictions: u64,
    /// NAKs received by processors.
    pub naks: u64,
    /// Read misses completed.
    pub reads_completed: u64,
}

impl ToJson for WindowSample {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("events", self.events)
            .field("peak_queue_depth", self.peak_queue_depth)
            .field("msgs_sent", self.msgs_sent)
            .field("home_busy", self.home_busy)
            .field("link_busy", self.link_busy)
            .field("sd_peak_occupancy", self.sd_peak_occupancy)
            .field("sd_peak_transients", self.sd_peak_transients)
            .field("sd_evictions", self.sd_evictions)
            .field("naks", self.naks)
            .field("reads_completed", self.reads_completed)
            .build()
    }
}

/// The finished time series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// Window width in cycles.
    pub window: Cycle,
    /// One sample per window, window `i` covering
    /// `[i * window, (i+1) * window)`.
    pub windows: Vec<WindowSample>,
}

impl ToJson for TimeSeries {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("window_cycles", self.window)
            .field("windows", self.windows.to_vec())
            .build()
    }
}

/// The live sampler.
#[derive(Debug)]
pub struct Sampler {
    window: Cycle,
    windows: Vec<WindowSample>,
}

impl Sampler {
    /// Creates a sampler with the given window width (clamped to >= 1).
    pub fn new(window: Cycle) -> Self {
        Sampler { window: window.max(1), windows: Vec::new() }
    }

    fn at(&mut self, t: Cycle) -> &mut WindowSample {
        let i = (t / self.window) as usize;
        if i >= self.windows.len() {
            self.windows.resize(i + 1, WindowSample::default());
        }
        &mut self.windows[i]
    }

    /// Splits a busy interval `[start, end)` across the windows it spans,
    /// adding the per-window share through `add`.
    fn spread(&mut self, start: Cycle, end: Cycle, add: impl Fn(&mut WindowSample, u64)) {
        if end <= start {
            return;
        }
        let w = self.window;
        let mut cur = start;
        while cur < end {
            let boundary = ((cur / w) + 1) * w;
            let stop = boundary.min(end);
            add(self.at(cur), stop - cur);
            cur = stop;
        }
    }

    /// Finalizes into the report payload.
    pub fn finish(self) -> TimeSeries {
        TimeSeries { window: self.window, windows: self.windows }
    }
}

impl Probe for Sampler {
    fn tick(&mut self, t: Cycle, queue_depth: usize) {
        let s = self.at(t);
        s.events += 1;
        s.peak_queue_depth = s.peak_queue_depth.max(queue_depth as u64);
    }

    fn msg_send(&mut self, t: Cycle, _msg: &Message) {
        self.at(t).msgs_sent += 1;
    }

    fn home_service(
        &mut self,
        _home: NodeId,
        _block: BlockAddr,
        _kind: MsgType,
        _arrive: Cycle,
        start: Cycle,
        done: Cycle,
    ) {
        self.spread(start, done, |s, d| s.home_busy += d);
    }

    fn link_traverse(
        &mut self,
        _link: LinkKey,
        _dense: u32,
        start: Cycle,
        end: Cycle,
        _flits: u32,
        _kind: MsgType,
        _wait: Cycle,
    ) {
        self.spread(start, end, |s, d| s.link_busy += d);
    }

    fn sd_event(&mut self, t: Cycle, _sw: SwitchLoc, _block: BlockAddr, ev: SdProbeEvent) {
        if ev == SdProbeEvent::Evict {
            self.at(t).sd_evictions += 1;
        }
    }

    fn sd_occupancy(&mut self, t: Cycle, _sw: SwitchLoc, valid: usize, transient: usize) {
        let s = self.at(t);
        s.sd_peak_occupancy = s.sd_peak_occupancy.max(valid as u64);
        s.sd_peak_transients = s.sd_peak_transients.max(transient as u64);
    }

    fn nak_received(&mut self, t: Cycle, _node: NodeId, _block: BlockAddr) {
        self.at(t).naks += 1;
    }

    fn read_complete(
        &mut self,
        _node: NodeId,
        _block: BlockAddr,
        _class: ReadClass,
        _latency: Cycle,
        t: Cycle,
        _txn: u64,
    ) {
        self.at(t).reads_completed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_land_in_their_windows() {
        let mut s = Sampler::new(100);
        s.tick(5, 3);
        s.tick(50, 9);
        s.tick(250, 1);
        let ts = s.finish();
        assert_eq!(ts.windows.len(), 3);
        assert_eq!(ts.windows[0].events, 2);
        assert_eq!(ts.windows[0].peak_queue_depth, 9);
        assert_eq!(ts.windows[1].events, 0);
        assert_eq!(ts.windows[2].events, 1);
    }

    #[test]
    fn busy_intervals_split_across_window_boundaries() {
        let mut s = Sampler::new(100);
        // 80..230 spans three windows: 20 + 100 + 30.
        s.link_traverse(LinkKey(1), 1, 80, 230, 4, MsgType::ReadRequest, 0);
        let ts = s.finish();
        assert_eq!(ts.windows[0].link_busy, 20);
        assert_eq!(ts.windows[1].link_busy, 100);
        assert_eq!(ts.windows[2].link_busy, 30);
    }

    #[test]
    fn occupancy_tracks_peaks_not_sums() {
        let mut s = Sampler::new(100);
        let sw = SwitchLoc::default();
        s.sd_occupancy(10, sw, 5, 2);
        s.sd_occupancy(20, sw, 3, 4);
        let ts = s.finish();
        assert_eq!(ts.windows[0].sd_peak_occupancy, 5);
        assert_eq!(ts.windows[0].sd_peak_transients, 4);
    }

    #[test]
    fn zero_window_is_clamped() {
        let mut s = Sampler::new(0);
        s.tick(7, 0);
        assert_eq!(s.finish().window, 1);
    }

    #[test]
    fn events_exactly_on_window_boundaries_fall_in_the_later_window() {
        // Windows are half-open [i*w, (i+1)*w): cycle 100 belongs to
        // window 1, not window 0.
        let mut s = Sampler::new(100);
        s.tick(99, 1);
        s.tick(100, 2);
        s.tick(200, 3);
        let ts = s.finish();
        assert_eq!(ts.windows.len(), 3);
        assert_eq!(ts.windows[0].events, 1);
        assert_eq!(ts.windows[1].events, 1);
        assert_eq!(ts.windows[2].events, 1);
    }

    #[test]
    fn busy_interval_ending_on_a_boundary_adds_nothing_past_it() {
        let mut s = Sampler::new(100);
        // [0, 100) is exactly one full window: nothing spills into window 1.
        s.link_traverse(LinkKey(1), 1, 0, 100, 1, MsgType::ReadRequest, 0);
        let ts = s.finish();
        assert_eq!(ts.windows.len(), 1);
        assert_eq!(ts.windows[0].link_busy, 100);
    }

    #[test]
    fn empty_and_zero_length_intervals_record_nothing() {
        let mut s = Sampler::new(100);
        s.home_service(0, BlockAddr(0), MsgType::ReadRequest, 5, 50, 50); // zero-length busy
        s.link_traverse(LinkKey(0), 0, 80, 70, 1, MsgType::ReadRequest, 0); // end before start
        let ts = s.finish();
        assert!(ts.windows.iter().all(|w| w.home_busy == 0 && w.link_busy == 0));
    }

    #[test]
    fn windows_with_zero_completed_reads_still_serialize() {
        // A run with traffic but no completed reads must produce windows
        // whose reads_completed is 0, not drop the windows.
        let mut s = Sampler::new(10);
        s.tick(0, 1);
        s.tick(25, 1);
        let ts = s.finish();
        assert_eq!(ts.windows.len(), 3);
        assert!(ts.windows.iter().all(|w| w.reads_completed == 0));
        let dump = ts.to_json().dump();
        assert!(dump.contains("\"reads_completed\":0"), "{dump}");
    }
}
